package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{X0, "zero"}, {RA, "ra"}, {SP, "sp"}, {A0, "a0"}, {A5, "a5"},
		{S0, "s0"}, {T6, "t6"}, {F0, "f0"}, {F31, "f31"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegByNameRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		got, ok := RegByName(r.String())
		if !ok {
			t.Fatalf("RegByName(%q) failed", r.String())
		}
		if got != r {
			t.Errorf("RegByName(%q) = %v, want %v", r.String(), got, r)
		}
	}
}

func TestRegByNameXForm(t *testing.T) {
	if r, ok := RegByName("x15"); !ok || r != A5 {
		t.Errorf("RegByName(x15) = %v,%v; want a5,true", r, ok)
	}
	if _, ok := RegByName("x32"); ok {
		t.Error("RegByName(x32) should fail")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) should fail")
	}
}

func TestRegIsFP(t *testing.T) {
	if X5.IsFP() {
		t.Error("X5 must not be FP")
	}
	if !F5.IsFP() {
		t.Error("F5 must be FP")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := OpInvalid + 1; op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok {
			t.Fatalf("OpByName(%q) failed", op.String())
		}
		if got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                                     Op
		branch, cond, load, store, setup, trap bool
	}{
		{OpAdd, false, false, false, false, false, false},
		{OpLw, false, false, true, false, false, true},
		{OpFlw, false, false, true, false, false, true},
		{OpSw, false, false, false, true, false, true},
		{OpFsw, false, false, false, true, false, true},
		{OpBeq, true, true, false, false, false, false},
		{OpBgeu, true, true, false, false, false, false},
		{OpJal, true, false, false, false, false, false},
		{OpJalr, true, false, false, false, false, false},
		{OpSetBranchID, false, false, false, false, true, false},
		{OpSetDependency, false, false, false, false, true, false},
		{OpFdiv, false, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsBranch() != c.branch {
			t.Errorf("%v.IsBranch() = %v", c.op, c.op.IsBranch())
		}
		if c.op.IsCondBranch() != c.cond {
			t.Errorf("%v.IsCondBranch() = %v", c.op, c.op.IsCondBranch())
		}
		if c.op.IsLoad() != c.load {
			t.Errorf("%v.IsLoad() = %v", c.op, c.op.IsLoad())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v.IsStore() = %v", c.op, c.op.IsStore())
		}
		if c.op.IsSetup() != c.setup {
			t.Errorf("%v.IsSetup() = %v", c.op, c.op.IsSetup())
		}
		if c.op.CanTrap() != c.trap {
			t.Errorf("%v.CanTrap() = %v", c.op, c.op.CanTrap())
		}
	}
}

func TestOpClassTotal(t *testing.T) {
	// Every defined op must fall into a meaningful class except OpInvalid.
	for op := OpInvalid + 1; op < numOps; op++ {
		if op == OpNop {
			continue
		}
		if op.Class() == ClassNop {
			t.Errorf("op %v has no class", op)
		}
	}
}

func TestInstDestAndSources(t *testing.T) {
	cases := []struct {
		in      Inst
		dest    Reg
		hasDest bool
		srcs    int
	}{
		{Inst{Op: OpAdd, Rd: A0, Rs1: A1, Rs2: A2}, A0, true, 2},
		{Inst{Op: OpAdd, Rd: X0, Rs1: A1, Rs2: A2}, X0, false, 2},
		{Inst{Op: OpAddi, Rd: A0, Rs1: X0, Imm: 5}, A0, true, 0},
		{Inst{Op: OpLw, Rd: A4, Rs1: S0, Imm: -40}, A4, true, 1},
		{Inst{Op: OpSw, Rs1: S0, Rs2: A5, Imm: -20}, X0, false, 2},
		{Inst{Op: OpBeq, Rs1: A0, Rs2: A1}, X0, false, 2},
		{Inst{Op: OpJal, Rd: RA}, RA, true, 0},
		{Inst{Op: OpJal, Rd: X0}, X0, false, 0},
		{Inst{Op: OpSetBranchID, Imm: 1}, X0, false, 0},
		{Inst{Op: OpGetCITEntry, Rd: A0, Imm: 3}, A0, true, 0},
		{Inst{Op: OpSetCITEntry, Rs1: A0, Imm: 3}, X0, false, 1},
	}
	for _, c := range cases {
		d, ok := c.in.Dest()
		if ok != c.hasDest || (ok && d != c.dest) {
			t.Errorf("%v: Dest() = %v,%v; want %v,%v", c.in, d, ok, c.dest, c.hasDest)
		}
		if got := len(c.in.Sources()); got != c.srcs {
			t.Errorf("%v: len(Sources()) = %d, want %d", c.in, got, c.srcs)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpLw, Rd: A4, Rs1: S0, Imm: -40}, "lw a4, -40(s0)"},
		{Inst{Op: OpSw, Rs1: S0, Rs2: A5, Imm: -20}, "sw a5, -20(s0)"},
		{Inst{Op: OpSub, Rd: A5, Rs1: A4, Rs2: A5}, "sub a5, a4, a5"},
		{Inst{Op: OpBeq, Rs1: A5, Rs2: X0, Label: "L1"}, "beq a5, zero, L1"},
		{Inst{Op: OpSetBranchID, Imm: 1}, "setBranchId 1"},
		{Inst{Op: OpSetDependency, Imm: 8, Aux: 1}, "setDependency 8 1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: Sources never returns X0 and never exceeds two registers.
func TestSourcesProperty(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8) bool {
		in := Inst{Op: Op(op % uint8(numOps)), Rd: Reg(rd % 64), Rs1: Reg(rs1 % 64), Rs2: Reg(rs2 % 64)}
		srcs := in.Sources()
		if len(srcs) > 2 {
			return false
		}
		for _, s := range srcs {
			if s == X0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstStringAllForms(t *testing.T) {
	// Exercise every rendering branch of Inst.String.
	cases := []Inst{
		{Op: OpAddi, Rd: A0, Rs1: A1, Imm: 5},
		{Op: OpLui, Rd: A0, Imm: 3},
		{Op: OpFsqrt, Rd: F1, Rs1: F0},
		{Op: OpFcvtIF, Rd: F0, Rs1: A0},
		{Op: OpFcvtFI, Rd: A0, Rs1: F0},
		{Op: OpMul, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: OpFlw, Rd: F0, Rs1: S0, Imm: 8},
		{Op: OpFsw, Rs1: S0, Rs2: F0, Imm: 8},
		{Op: OpJalr, Rd: RA, Rs1: A0, Imm: 4},
		{Op: OpJal, Rd: RA, Target: 7},
		{Op: OpBlt, Rs1: A0, Rs2: A1, Target: 9},
		{Op: OpGetCITEntry, Rd: A0, Imm: 2},
		{Op: OpSetCITEntry, Rs1: A0, Imm: 2},
		{Op: OpHalt},
		{Op: OpNop},
		{Op: OpFence},
	}
	for _, in := range cases {
		s := in.String()
		if s == "" || s == "op?" {
			t.Errorf("bad rendering for %#v: %q", in, s)
		}
	}
	// A jal with a label renders the label; with only a target, the PC.
	withLabel := Inst{Op: OpJal, Rd: RA, Label: "fn"}
	if got := withLabel.String(); got != "jal ra, fn" {
		t.Errorf("labelled jump = %q", got)
	}
}

func TestRegStringOutOfRange(t *testing.T) {
	if got := Reg(200).String(); got == "" {
		t.Error("out-of-range register produced empty string")
	}
	if Reg(200).Valid() {
		t.Error("Reg(200) claims validity")
	}
}

func TestOpStringUnknown(t *testing.T) {
	if got := Op(250).String(); got != "op?" {
		t.Errorf("unknown op renders %q", got)
	}
	if _, ok := OpByName("definitely-not-an-op"); ok {
		t.Error("OpByName accepted nonsense")
	}
}

func TestIsFence(t *testing.T) {
	if !OpFence.IsFence() || OpNop.IsFence() {
		t.Error("IsFence misclassifies")
	}
	if OpFence.CanTrap() {
		t.Error("fence must not trap")
	}
}
