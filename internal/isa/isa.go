// Package isa defines the RISC-V-flavoured instruction set used throughout
// the NOREBA reproduction: a compact register ISA (32 integer and 32
// floating-point registers) extended with the four instructions the paper
// introduces — setBranchId, setDependency, getCITEntry and setCITEntry —
// which carry compiler branch-dependency information to the hardware and
// expose the Committed Instructions Table (CIT) to the operating system.
//
// Instructions are represented in decoded (struct) form rather than as
// binary encodings: every consumer in this repository — the functional
// emulator, the compiler pass and the cycle-level pipeline model — operates
// on decoded instructions, exactly as gem5's ISA-independent O3 model does.
package isa

import "fmt"

// Reg names an architectural register. Values 0–31 are the integer
// registers X0–X31 (X0 is hardwired to zero); values 32–63 are the
// floating-point registers F0–F31. The zero value is X0.
type Reg uint8

// Integer register names, with RISC-V ABI aliases.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	X31

	Zero = X0 // hardwired zero
	RA   = X1 // return address
	SP   = X2 // stack pointer
	GP   = X3 // global pointer
	TP   = X4 // thread pointer
	T0   = X5 // temporaries
	T1   = X6
	T2   = X7
	S0   = X8 // saved registers / frame pointer
	S1   = X9
	A0   = X10 // argument/return registers
	A1   = X11
	A2   = X12
	A3   = X13
	A4   = X14
	A5   = X15
	A6   = X16
	A7   = X17
	S2   = X18
	S3   = X19
	S4   = X20
	S5   = X21
	S6   = X22
	S7   = X23
	S8   = X24
	S9   = X25
	S10  = X26
	S11  = X27
	T3   = X28
	T4   = X29
	T5   = X30
	T6   = X31
)

// Floating-point register names.
const (
	F0 Reg = 32 + iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

// NumRegs is the total architectural register count (integer + FP).
const NumRegs = 64

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= F0 && r <= F31 }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

var intRegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register ("a5", "f2", …).
func (r Reg) String() string {
	switch {
	case r < 32:
		return intRegNames[r]
	case r < NumRegs:
		return fmt.Sprintf("f%d", r-32)
	default:
		return fmt.Sprintf("?reg%d", uint8(r))
	}
}

// RegByName resolves an ABI register name ("a5", "x13", "f2") to a Reg.
func RegByName(name string) (Reg, bool) {
	for i, n := range intRegNames {
		if n == name {
			return Reg(i), true
		}
	}
	var idx int
	if _, err := fmt.Sscanf(name, "x%d", &idx); err == nil && idx >= 0 && idx < 32 {
		return Reg(idx), true
	}
	if _, err := fmt.Sscanf(name, "f%d", &idx); err == nil && idx >= 0 && idx < 32 {
		return Reg(32 + idx), true
	}
	return 0, false
}
