package isa

import "fmt"

// Inst is a decoded instruction. PCs are instruction indices into the laid
// out program (the "text segment"); Target holds the resolved absolute PC of
// branch/jump destinations.
type Inst struct {
	Op  Op
	Rd  Reg // destination register (X0 means "no destination")
	Rs1 Reg // first source
	Rs2 Reg // second source (store data, branch comparand)
	Imm int64
	Aux int64 // second immediate: setDependency's branch ID
	// Target is the resolved destination PC for branches and direct jumps.
	Target int
	// Label is the unresolved destination label; the assembler and program
	// builder fill Target from it at layout time.
	Label string
}

// HasDest reports whether the instruction writes an architectural register.
func (i *Inst) HasDest() bool {
	switch i.Op.Class() {
	case ClassStore, ClassBranch, ClassJump, ClassSetup, ClassSystem, ClassNop:
		// Jal and Jalr do write rd; getCITEntry writes rd.
		return (i.Op == OpJal || i.Op == OpJalr || i.Op == OpGetCITEntry) && i.Rd != X0
	default:
		return i.Rd != X0
	}
}

// Dest returns the destination register and whether one exists.
func (i *Inst) Dest() (Reg, bool) {
	if i.HasDest() {
		return i.Rd, true
	}
	return X0, false
}

// SourceRegs returns the architectural registers the instruction reads,
// X0 standing in for "no operand". An instruction has at most two register
// sources, so the fixed-arity form lets dependence tracking run without
// allocating; Sources is the slice view of the same answer.
func (i *Inst) SourceRegs() (Reg, Reg) {
	switch i.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpMul, OpMulh, OpDiv, OpRem,
		OpFadd, OpFsub, OpFmul, OpFdiv, OpFmin, OpFmax, OpFlt, OpFle, OpFeq:
		return i.Rs1, i.Rs2
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti,
		OpFsqrt, OpFcvtIF, OpFcvtFI, OpJalr, OpLw, OpFlw:
		return i.Rs1, X0
	case OpSw, OpFsw:
		return i.Rs1, i.Rs2 // address base, store data
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return i.Rs1, i.Rs2
	case OpSetCITEntry:
		return i.Rs1, X0
	}
	return X0, X0
}

// Sources returns the architectural registers the instruction reads.
// X0 sources are excluded (they read as zero and never have a producer).
func (i *Inst) Sources() []Reg {
	r1, r2 := i.SourceRegs()
	var srcs []Reg
	if r1 != X0 {
		srcs = append(srcs, r1)
	}
	if r2 != X0 {
		srcs = append(srcs, r2)
	}
	return srcs
}

// String renders the instruction in assembly syntax.
func (i Inst) String() string {
	target := func() string {
		if i.Label != "" {
			return i.Label
		}
		return fmt.Sprintf("%d", i.Target)
	}
	switch i.Op.Class() {
	case ClassIntALU, ClassIntMul, ClassIntDiv, ClassFPALU, ClassFPDiv:
		switch i.Op {
		case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti:
			return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
		case OpLui:
			return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
		case OpFsqrt, OpFcvtIF, OpFcvtFI:
			return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
		default:
			return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
		}
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case ClassBranch:
		if i.Op == OpJalr {
			return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rs1, i.Rs2, target())
	case ClassJump:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, target())
	case ClassSetup:
		if i.Op == OpSetBranchID {
			return fmt.Sprintf("%s %d", i.Op, i.Imm)
		}
		return fmt.Sprintf("%s %d %d", i.Op, i.Imm, i.Aux)
	case ClassSystem:
		switch i.Op {
		case OpGetCITEntry:
			return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
		case OpSetCITEntry:
			return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
		default:
			return i.Op.String()
		}
	default:
		return i.Op.String()
	}
}
