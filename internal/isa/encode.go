package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction encoding.
//
// The paper extends the RISC-V ISA with new instructions (Table 1); this
// file gives the whole simulated ISA a concrete binary encoding so programs
// can be stored, hashed and shipped as flat images. A production RISC-V
// implementation would pack into 32-bit words with the usual immediate
// splitting; this simulator uses a fixed 64-bit word that keeps every
// immediate exact and round-trips losslessly:
//
//	[7:0]    opcode (Op)
//	[15:8]   rd
//	[23:16]  rs1
//	[31:24]  rs2  — carries the branch ID for setDependency (its Aux)
//	[63:32]  imm32 (signed) — ALU/memory immediates, setBranchId's ID,
//	         setDependency's NUM, and branch/jump target deltas
//	         (target − pc), which relocates cleanly.
type Word uint64

const (
	immMin = -(1 << 31)
	immMax = 1<<31 - 1
)

// EncodeCheck reports whether in (at instruction index pc) fits the binary
// encoding; the error names the violated bound.
func EncodeCheck(in Inst, pc int) error {
	if in.Op == OpInvalid || in.Op >= numOps {
		return fmt.Errorf("isa: cannot encode op %d", in.Op)
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return fmt.Errorf("isa: %v has an out-of-range register", in.Op)
	}
	imm := in.Imm
	if in.Op.IsCondBranch() || in.Op == OpJal {
		imm = int64(in.Target - pc)
	}
	if imm < immMin || imm > immMax {
		return fmt.Errorf("isa: %v immediate %d outside 32-bit range", in.Op, imm)
	}
	if in.Op == OpSetDependency && (in.Aux < 0 || in.Aux > 255) {
		return fmt.Errorf("isa: setDependency branch ID %d outside 8-bit range", in.Aux)
	}
	return nil
}

// Encode packs the instruction into its binary word. pc is the
// instruction's own index; branch and direct-jump targets are stored as
// deltas so encoded code is position independent. Labels must already be
// resolved to Target.
func Encode(in Inst, pc int) (Word, error) {
	if err := EncodeCheck(in, pc); err != nil {
		return 0, err
	}
	imm := in.Imm
	if in.Op.IsCondBranch() || in.Op == OpJal {
		imm = int64(in.Target - pc)
	}
	rs2 := uint64(in.Rs2)
	if in.Op == OpSetDependency {
		rs2 = uint64(in.Aux)
	}
	w := uint64(in.Op) |
		uint64(in.Rd)<<8 |
		uint64(in.Rs1)<<16 |
		rs2<<24 |
		uint64(uint32(int32(imm)))<<32
	return Word(w), nil
}

// Decode unpacks a binary word at instruction index pc.
func Decode(w Word, pc int) (Inst, error) {
	op := Op(w & 0xff)
	if op == OpInvalid || op >= numOps {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d in word %#x", uint64(w&0xff), uint64(w))
	}
	in := Inst{
		Op:  op,
		Rd:  Reg(w >> 8 & 0xff),
		Rs1: Reg(w >> 16 & 0xff),
		Rs2: Reg(w >> 24 & 0xff),
		Imm: int64(int32(w >> 32)),
	}
	if op == OpSetDependency {
		// The rs2 field carries the 8-bit branch ID, not a register.
		in.Aux = int64(w >> 24 & 0xff)
		in.Rs2 = X0
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return Inst{}, fmt.Errorf("isa: register field out of range in word %#x", uint64(w))
	}
	if op.IsCondBranch() || op == OpJal {
		in.Target = pc + int(in.Imm)
		in.Imm = 0
	}
	return in, nil
}

// EncodeProgram packs a resolved instruction stream into a flat binary
// image (little-endian words).
func EncodeProgram(insts []Inst) ([]byte, error) {
	out := make([]byte, 0, len(insts)*8)
	for pc, in := range insts {
		w, err := Encode(in, pc)
		if err != nil {
			return nil, fmt.Errorf("pc %d: %w", pc, err)
		}
		out = binary.LittleEndian.AppendUint64(out, uint64(w))
	}
	return out, nil
}

// DecodeProgram unpacks a flat binary image produced by EncodeProgram.
func DecodeProgram(data []byte) ([]Inst, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("isa: image length %d not word aligned", len(data))
	}
	out := make([]Inst, 0, len(data)/8)
	for pc := 0; pc*8 < len(data); pc++ {
		w := Word(binary.LittleEndian.Uint64(data[pc*8:]))
		in, err := Decode(w, pc)
		if err != nil {
			return nil, fmt.Errorf("pc %d: %w", pc, err)
		}
		out = append(out, in)
	}
	return out, nil
}
