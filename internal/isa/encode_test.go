package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		in Inst
		pc int
	}{
		{Inst{Op: OpAdd, Rd: A0, Rs1: A1, Rs2: A2}, 0},
		{Inst{Op: OpAddi, Rd: T0, Rs1: S0, Imm: -40}, 3},
		{Inst{Op: OpLw, Rd: A4, Rs1: S0, Imm: -8192}, 7},
		{Inst{Op: OpSw, Rs1: S0, Rs2: A5, Imm: 4096}, 9},
		{Inst{Op: OpBeq, Rs1: A5, Rs2: X0, Target: 42}, 10},
		{Inst{Op: OpBne, Rs1: A0, Rs2: A1, Target: 2}, 100},
		{Inst{Op: OpJal, Rd: RA, Target: 5}, 60},
		{Inst{Op: OpJalr, Rd: X0, Rs1: RA, Imm: 0}, 61},
		{Inst{Op: OpSetBranchID, Imm: 5}, 12},
		{Inst{Op: OpSetDependency, Imm: 31, Aux: 7}, 13},
		{Inst{Op: OpGetCITEntry, Rd: A0, Imm: 3}, 14},
		{Inst{Op: OpSetCITEntry, Rs1: A0, Imm: 3}, 15},
		{Inst{Op: OpFadd, Rd: F1, Rs1: F2, Rs2: F3}, 16},
		{Inst{Op: OpFence}, 17},
		{Inst{Op: OpHalt}, 18},
		{Inst{Op: OpLui, Rd: A0, Imm: 1 << 19}, 19},
	}
	for _, c := range cases {
		w, err := Encode(c.in, c.pc)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		got, err := Decode(w, c.pc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", c.in, err)
		}
		want := c.in
		want.Label = ""
		if got != want {
			t.Errorf("round trip changed %v -> %v (word %#x)", want, got, uint64(w))
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []struct {
		in Inst
		pc int
	}{
		{Inst{Op: OpAddi, Rd: A0, Imm: 1 << 40}, 0},
		{Inst{Op: OpSetDependency, Imm: 3, Aux: 300}, 0},
		{Inst{Op: OpInvalid}, 0},
		{Inst{Op: numOps}, 0},
		{Inst{Op: OpAdd, Rd: Reg(200)}, 0},
	}
	for _, c := range bad {
		if _, err := Encode(c.in, c.pc); err == nil {
			t.Errorf("Encode accepted %v", c.in)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(Word(0), 0); err == nil {
		t.Error("Decode accepted opcode 0 (invalid)")
	}
	if _, err := Decode(Word(0xff), 0); err == nil {
		t.Error("Decode accepted out-of-range opcode")
	}
	if _, err := Decode(Word(uint64(OpAdd)|0xc8<<8), 0); err == nil {
		t.Error("Decode accepted out-of-range register")
	}
}

func TestBranchDeltaRelocates(t *testing.T) {
	in := Inst{Op: OpBeq, Rs1: A0, Rs2: A1, Target: 20}
	w, err := Encode(in, 10) // delta +10
	if err != nil {
		t.Fatal(err)
	}
	moved, err := Decode(w, 50)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Target != 60 {
		t.Errorf("relocated target = %d, want 60", moved.Target)
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: OpAddi, Rd: A0, Rs1: X0, Imm: 5},
		{Op: OpAddi, Rd: A1, Rs1: X0, Imm: 0},
		{Op: OpAdd, Rd: A1, Rs1: A1, Rs2: A0},
		{Op: OpAddi, Rd: A0, Rs1: A0, Imm: -1},
		{Op: OpBne, Rs1: A0, Rs2: X0, Target: 2},
		{Op: OpHalt},
	}
	data, err := EncodeProgram(insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(insts)*8 {
		t.Fatalf("image size %d, want %d", len(data), len(insts)*8)
	}
	back, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		want := insts[i]
		want.Label = ""
		if back[i] != want {
			t.Errorf("inst %d: %v != %v", i, back[i], want)
		}
	}
	if _, err := DecodeProgram(data[:5]); err == nil {
		t.Error("DecodeProgram accepted unaligned image")
	}
}

// Property: every encodable random instruction round-trips exactly.
func TestEncodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		in := Inst{
			Op:  Op(1 + r.Intn(int(numOps)-1)),
			Rd:  Reg(r.Intn(NumRegs)),
			Rs1: Reg(r.Intn(NumRegs)),
			Rs2: Reg(r.Intn(NumRegs)),
			Imm: int64(int32(r.Uint32())),
		}
		pc := r.Intn(1 << 20)
		if in.Op.IsCondBranch() || in.Op == OpJal {
			in.Imm = 0
			in.Target = pc + int(int32(r.Uint32())>>12)
		}
		if in.Op == OpSetDependency {
			in.Aux = int64(r.Intn(256))
			in.Rs2 = X0
		}
		w, err := Encode(in, pc)
		if err != nil {
			return true // out-of-range combinations are allowed to fail
		}
		got, err := Decode(w, pc)
		if err != nil {
			return false
		}
		return got == in
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
