package isa

// Op identifies an operation. The set mirrors the RV64IMF subset the paper's
// workloads exercise, plus the four NOREBA setup/CIT instructions.
type Op uint8

// Valid reports whether o names a defined operation — what deserializers
// (the trace-file reader) must check before trusting an op byte.
func (o Op) Valid() bool { return o != OpInvalid && o < numOps }

const (
	OpInvalid Op = iota

	// Integer register-register ALU.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// Integer register-immediate ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui

	// Integer multiply/divide.
	OpMul
	OpMulh
	OpDiv
	OpRem

	// Floating point.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFsqrt
	OpFmin
	OpFmax
	OpFcvtIF // integer → float (rd is FP, rs1 is integer)
	OpFcvtFI // float → integer (rd is integer, rs1 is FP)
	OpFlt    // rd(int) = rs1 < rs2 (FP compare)
	OpFle
	OpFeq

	// Memory. Addresses are rs1 + Imm; values are 64-bit words.
	OpLw  // integer load
	OpSw  // integer store (value in rs2)
	OpFlw // FP load
	OpFsw // FP store (value in rs2)

	// Control flow. Conditional branches compare rs1 against rs2 and jump
	// to Target; Jal writes the return PC to rd and jumps to Target; Jalr
	// jumps to rs1+Imm.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal
	OpJalr

	// NOREBA setup instructions (Table 1 of the paper). They occupy fetch
	// slots but are dropped at decode and never execute.
	//
	//   setBranchId ID        — Imm = compiler-assigned branch ID
	//   setDependency NUM ID  — Imm = NUM consecutive dependent
	//                           instructions, Aux = branch ID
	OpSetBranchID
	OpSetDependency

	// CIT ↔ OS communication instructions (§4.4). getCITEntry reads CIT
	// entry Imm into rd (as an opaque token); setCITEntry restores entry
	// Imm from rs1.
	OpGetCITEntry
	OpSetCITEntry

	// Fence is the memory/synchronisation barrier of §4.5: the compiler
	// performs the NOREBA pass only between fences, and the hardware
	// commits strictly in order across one.
	OpFence

	// Misc.
	OpNop
	OpHalt

	numOps
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti", OpLui: "lui",
	OpMul: "mul", OpMulh: "mulh", OpDiv: "div", OpRem: "rem",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv",
	OpFsqrt: "fsqrt", OpFmin: "fmin", OpFmax: "fmax",
	OpFcvtIF: "fcvt.d.l", OpFcvtFI: "fcvt.l.d",
	OpFlt: "flt", OpFle: "fle", OpFeq: "feq",
	OpLw: "lw", OpSw: "sw", OpFlw: "flw", OpFsw: "fsw",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu", OpJal: "jal", OpJalr: "jalr",
	OpSetBranchID: "setBranchId", OpSetDependency: "setDependency",
	OpGetCITEntry: "getCITEntry", OpSetCITEntry: "setCITEntry",
	OpNop: "nop", OpHalt: "halt", OpFence: "fence",
	OpInvalid: "invalid",
}

// String returns the assembly mnemonic of the op.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op?"
}

// OpByName resolves an assembly mnemonic to its Op.
func OpByName(name string) (Op, bool) {
	for op, s := range opNames {
		if s == name && op != OpInvalid {
			return op, true
		}
	}
	return OpInvalid, false
}

// Class groups ops by the functional unit and pipeline treatment they need.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPALU
	ClassFPDiv // divide and sqrt
	ClassLoad
	ClassStore
	ClassBranch // conditional branches and indirect jumps
	ClassJump   // direct unconditional jumps
	ClassSetup  // NOREBA setup instructions, dropped at decode
	ClassSystem // CIT/OS instructions, halt
)

// Class returns the functional class of the op.
func (o Op) Class() Class {
	switch o {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpLui:
		return ClassIntALU
	case OpMul, OpMulh:
		return ClassIntMul
	case OpDiv, OpRem:
		return ClassIntDiv
	case OpFadd, OpFsub, OpFmul, OpFmin, OpFmax, OpFcvtIF, OpFcvtFI, OpFlt, OpFle, OpFeq:
		return ClassFPALU
	case OpFdiv, OpFsqrt:
		return ClassFPDiv
	case OpLw, OpFlw:
		return ClassLoad
	case OpSw, OpFsw:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJalr:
		return ClassBranch
	case OpJal:
		return ClassJump
	case OpSetBranchID, OpSetDependency:
		return ClassSetup
	case OpGetCITEntry, OpSetCITEntry, OpHalt, OpFence:
		return ClassSystem
	default:
		return ClassNop
	}
}

// IsCondBranch reports whether the op is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}

// IsBranch reports whether the op transfers control (conditionally or not).
func (o Op) IsBranch() bool {
	return o.IsCondBranch() || o == OpJal || o == OpJalr
}

// IsLoad reports whether the op reads memory.
func (o Op) IsLoad() bool { return o == OpLw || o == OpFlw }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o == OpSw || o == OpFsw }

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsFence reports whether the op is the §4.5 synchronisation barrier.
func (o Op) IsFence() bool { return o == OpFence }

// IsSetup reports whether the op is a NOREBA setup instruction
// (setBranchId / setDependency), which is dropped at decode.
func (o Op) IsSetup() bool { return o == OpSetBranchID || o == OpSetDependency }

// CanTrap reports whether the op can raise a synchronous exception. In the
// paper's RISC-V setting only memory operations trap (floating-point
// exceptions accrue in fcsr and do not trap, §4.4).
func (o Op) CanTrap() bool { return o.IsMem() }
