package isa

import "testing"

// FuzzEncodeDecodeRoundTrip: any encodable instruction must survive
// Decode(Encode(in)) bit-exactly — including the paper's four added
// instructions (setBranchId, setDependency, getCITEntry, setCITEntry), whose
// encodings reuse fields unusually (setDependency's branch ID rides in the
// rs2 byte). The fuzzer canonicalises raw inputs into the nearest valid
// instruction shape and then demands a lossless round trip; inputs that
// EncodeCheck rejects must also fail Encode, never panic.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	// The four NOREBA instructions, plus representatives of each regular
	// encoding shape (ALU, memory, branch delta, jump).
	f.Add(uint8(OpSetBranchID), uint8(0), uint8(0), uint8(0), int64(3), int64(0), 10)
	f.Add(uint8(OpSetDependency), uint8(0), uint8(0), uint8(0), int64(8), int64(5), 11)
	f.Add(uint8(OpGetCITEntry), uint8(A0), uint8(0), uint8(0), int64(2), int64(0), 12)
	f.Add(uint8(OpSetCITEntry), uint8(0), uint8(A1), uint8(0), int64(2), int64(0), 13)
	f.Add(uint8(OpAddi), uint8(A0), uint8(A1), uint8(0), int64(-42), int64(0), 0)
	f.Add(uint8(OpLw), uint8(A4), uint8(S0), uint8(0), int64(-40), int64(0), 7)
	f.Add(uint8(OpBeq), uint8(A5), uint8(X0), uint8(0), int64(-3), int64(0), 100)
	f.Add(uint8(OpJal), uint8(RA), uint8(0), uint8(0), int64(250), int64(0), 5)

	f.Fuzz(func(t *testing.T, op, rd, rs1, rs2 uint8, imm, aux int64, pc int) {
		in := Inst{Op: Op(op), Rd: Reg(rd), Rs1: Reg(rs1), Rs2: Reg(rs2)}
		pc &= 1<<20 - 1 // instruction index: non-negative, well under delta range
		imm = int64(int32(imm))
		switch {
		case in.Op.IsCondBranch() || in.Op == OpJal:
			// Branch/jump targets are encoded as deltas from pc; the
			// assembler stores them resolved in Target with Imm zero.
			in.Target = pc + int(imm)
		case in.Op == OpSetDependency:
			in.Imm = imm
			in.Aux = aux & 0xff
			in.Rs2 = X0 // the rs2 byte carries Aux, not a register
		default:
			in.Imm = imm
		}

		w, err := Encode(in, pc)
		if checkErr := EncodeCheck(in, pc); (checkErr != nil) != (err != nil) {
			t.Fatalf("EncodeCheck (%v) and Encode (%v) disagree for %+v", checkErr, err, in)
		}
		if err != nil {
			return // invalid shapes (bad op, out-of-range register) may not round-trip
		}
		out, err := Decode(w, pc)
		if err != nil {
			t.Fatalf("decode of freshly encoded word %#x failed: %v (in=%+v)", uint64(w), err, in)
		}
		if out != in {
			t.Fatalf("round trip changed the instruction:\n in=%+v\nout=%+v\nword=%#x", in, out, uint64(w))
		}
	})
}
