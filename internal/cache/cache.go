// Package cache models the memory hierarchy of the simulated core: set
// associative L1i/L1d/L2/L3 caches with LRU replacement and per-line fill
// timing, chained into a Hierarchy whose latencies follow the paper's
// Table 2 (L1 4clk, L2 12clk, L3 36clk, then main memory).
//
// Timing model: an access at cycle c that misses at every level installs
// the line everywhere with a readiness timestamp; a later access to a line
// still in flight (an MSHR hit) pays only the remaining latency.
package cache

// LineSize is the cache line size in bytes.
const LineSize = 64

type line struct {
	tag     int64
	valid   bool
	lastUse int64 // LRU clock
	readyAt int64 // cycle the fill completes
}

// Cache is one set-associative level.
type Cache struct {
	name     string
	sets     int
	ways     int
	latency  int64
	lines    []line // sets × ways; frozen shared storage in a COW clone
	lruClock int64

	// shift lazily rebases fill timestamps: a line's effective readiness is
	// line.readyAt + shift, and installs store readyAt - shift, so ShiftClock
	// is O(1) instead of a pass over every line.
	shift int64

	// Copy-on-write state, set only in clones made with CloneCOW: parent is
	// the frozen base this clone overlays (itself possibly a COW clone,
	// forming a chain down to a root that owns its lines), ownIdx maps a set
	// index to 1+slot in owned, and owned holds the materialized (privately
	// writable) sets, ways lines each. A nil ownIdx means the cache owns
	// lines outright. A set is resolved at the nearest chain level that has
	// materialized it; every level below a clone must stay frozen while the
	// clone is live.
	parent *Cache
	ownIdx []int32
	owned  []line

	// Statistics.
	Accesses int64
	Misses   int64
}

// New builds a cache with the given total size in bytes, associativity and
// hit latency in cycles.
func New(name string, sizeBytes, ways int, latency int64) *Cache {
	sets := sizeBytes / LineSize / ways
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		latency: latency,
		lines:   make([]line, sets*ways),
	}
}

// Name returns the level's name ("L1d", "L2", …).
func (c *Cache) Name() string { return c.name }

// Latency returns the level's hit latency.
func (c *Cache) Latency() int64 { return c.latency }

func (c *Cache) set(addr int64) []line {
	blk := addr / LineSize
	s := int(uint64(blk) % uint64(c.sets))
	if c.ownIdx == nil {
		return c.lines[s*c.ways : (s+1)*c.ways]
	}
	if idx := c.ownIdx[s]; idx != 0 {
		off := int(idx-1) * c.ways
		return c.owned[off : off+c.ways]
	}
	// First touch of this set: materialize a private copy. Even a lookup
	// must, since a hit updates the line's LRU stamp.
	off := len(c.owned)
	c.owned = append(c.owned, c.resolveSet(s)...)
	c.ownIdx[s] = int32(off/c.ways) + 1
	return c.owned[off : off+c.ways]
}

// resolveSet returns set s as seen through the COW chain, without
// materializing it here: the nearest level that owns or has materialized the
// set wins. Only valid on a COW clone (ownIdx non-nil) that has not
// materialized s itself. The returned slice aliases frozen storage.
func (c *Cache) resolveSet(s int) []line {
	for p := c.parent; ; p = p.parent {
		if p.ownIdx == nil {
			return p.lines[s*p.ways : (s+1)*p.ways]
		}
		if idx := p.ownIdx[s]; idx != 0 {
			off := int(idx-1) * p.ways
			return p.owned[off : off+p.ways]
		}
	}
}

// lookup returns the way holding addr, or nil.
func (c *Cache) lookup(addr int64) *line {
	tag := addr / LineSize
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// install places addr's line into the cache with the given readiness time,
// evicting the LRU way.
func (c *Cache) install(addr, readyAt int64) *line {
	tag := addr / LineSize
	set := c.set(addr)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	c.lruClock++
	*victim = line{tag: tag, valid: true, lastUse: c.lruClock, readyAt: readyAt - c.shift}
	return victim
}

// Contains reports whether addr's line is resident (regardless of fill
// completion); used by tests and the prefetcher.
func (c *Cache) Contains(addr int64) bool { return c.lookup(addr) != nil }

// Clone returns an independent deep copy of the level: contents, LRU order,
// fill timestamps and statistics. Cloning a COW clone flattens its chain.
func (c *Cache) Clone() *Cache {
	cp := *c
	if c.ownIdx == nil {
		cp.lines = append([]line(nil), c.lines...)
		return &cp
	}
	cp.lines = make([]line, c.sets*c.ways)
	for s := 0; s < c.sets; s++ {
		var src []line
		if idx := c.ownIdx[s]; idx != 0 {
			src = c.owned[int(idx-1)*c.ways : int(idx)*c.ways]
		} else {
			src = c.resolveSet(s)
		}
		copy(cp.lines[s*c.ways:(s+1)*c.ways], src)
	}
	cp.parent, cp.ownIdx, cp.owned = nil, nil, nil
	return &cp
}

// CloneCOW returns a copy-on-write clone layered over c: it resolves sets
// through c (and c's own chain, if any) and materializes a set privately the
// first time it is touched. c — the whole chain below the clone — must not
// be mutated while the clone is live; sampled simulation layers clones over
// frozen warm-state captures, which satisfies this. A detailed window
// touches a tiny fraction of a large cache's sets, so a COW clone replaces
// megabytes of line copying per window with one sets-sized index.
func (c *Cache) CloneCOW() *Cache {
	cp := *c
	cp.parent = c
	cp.lines = nil // sets resolve through the chain; avoid stale shortcuts
	cp.ownIdx = make([]int32, c.sets)
	cp.owned = nil
	return &cp
}

// shiftClock rebases every valid line's fill-completion timestamp by delta
// cycles; lastUse and lruClock are ordinal (access order, not cycles) and
// stay put. The rebase is a lazy O(1) offset applied wherever readyAt is
// read or written.
func (c *Cache) shiftClock(delta int64) { c.shift += delta }

// Hierarchy chains cache levels over a fixed-latency main memory.
type Hierarchy struct {
	Levels  []*Cache
	MemLat  int64
	MemAccs int64 // accesses that reached main memory

	// PrefetchIssued / PrefetchUseful count prefetcher activity for the
	// power model and statistics.
	PrefetchIssued int64
	PrefetchUseful int64
}

// Config holds one level's geometry.
type Config struct {
	Name    string
	Size    int
	Ways    int
	Latency int64
}

// NewHierarchy builds a hierarchy from level configs (ordered L1 → last
// level) and a main-memory latency.
func NewHierarchy(memLat int64, levels ...Config) *Hierarchy {
	h := &Hierarchy{MemLat: memLat}
	for _, l := range levels {
		h.Levels = append(h.Levels, New(l.Name, l.Size, l.Ways, l.Latency))
	}
	return h
}

// Access performs a demand access to addr at the given cycle and returns
// the cycle at which the data is available. Lines are installed at every
// level on the fill path (inclusive hierarchy).
func (h *Hierarchy) Access(addr, cycle int64) (doneAt int64) {
	return h.access(addr, cycle, false)
}

// Prefetch installs addr's line as if demanded at cycle, without polluting
// demand statistics beyond the levels it fills. Prefetches fill starting at
// the first level that misses.
func (h *Hierarchy) Prefetch(addr, cycle int64) {
	h.PrefetchIssued++
	h.access(addr, cycle, true)
}

func (h *Hierarchy) access(addr, cycle int64, prefetch bool) int64 {
	elapsed := int64(0)
	var missLevels []*Cache
	for _, c := range h.Levels {
		if !prefetch {
			c.Accesses++
		}
		elapsed += c.latency
		if ln := c.lookup(addr); ln != nil {
			c.lruClock++
			ln.lastUse = c.lruClock
			ready := cycle + elapsed
			if eff := ln.readyAt + c.shift; eff > ready {
				ready = eff // in-flight fill: pay the remaining time
			}
			if !prefetch && ln.readyAt+c.shift > cycle && len(missLevels) == 0 {
				// Demand hit on an in-flight prefetch: it was useful.
				h.PrefetchUseful++
			}
			h.fill(missLevels, addr, ready)
			return ready
		}
		if !prefetch {
			c.Misses++
		}
		missLevels = append(missLevels, c)
	}
	if !prefetch {
		h.MemAccs++
	}
	ready := cycle + elapsed + h.MemLat
	h.fill(missLevels, addr, ready)
	return ready
}

func (h *Hierarchy) fill(levels []*Cache, addr, readyAt int64) {
	for _, c := range levels {
		c.install(addr, readyAt)
	}
}

// Clone returns an independent deep copy of the whole hierarchy. Sampled
// simulation uses it to capture functionally-warmed cache state once and
// reuse it across the configurations and representative windows that share
// the same warming input.
func (h *Hierarchy) Clone() *Hierarchy {
	cp := *h
	cp.Levels = make([]*Cache, len(h.Levels))
	for i, c := range h.Levels {
		cp.Levels[i] = c.Clone()
	}
	return &cp
}

// CloneCOW returns a copy-on-write copy of the whole hierarchy (see
// Cache.CloneCOW): the parent must stay frozen while the clone is live.
// Detailed sample windows use this to start from a captured warm state
// without copying every line of the large lower levels.
func (h *Hierarchy) CloneCOW() *Hierarchy {
	cp := *h
	cp.Levels = make([]*Cache, len(h.Levels))
	for i, c := range h.Levels {
		cp.Levels[i] = c.CloneCOW()
	}
	return &cp
}

// ShiftClock rebases every line's fill-completion timestamp by delta cycles.
// Access timing is linear in the access cycle — a hit's ready time is
// max(cycle+latency, readyAt) and a fill stores cycle+latency+... — so a
// hierarchy warmed on a clock c(i) and then shifted by delta is exactly the
// hierarchy warming on c(i)+delta would have produced. This lets one warming
// pass over a shared stream prefix serve several windows that open at
// different pseudo-cycles: capture, clone, shift each copy to its window's
// time base.
func (h *Hierarchy) ShiftClock(delta int64) {
	for _, c := range h.Levels {
		c.shiftClock(delta)
	}
}

// Reset clears statistics but keeps cache contents.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Accesses, c.Misses = 0, 0
	}
	h.MemAccs = 0
	h.PrefetchIssued, h.PrefetchUseful = 0, 0
}
