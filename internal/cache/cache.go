// Package cache models the memory hierarchy of the simulated core: set
// associative L1i/L1d/L2/L3 caches with LRU replacement and per-line fill
// timing, chained into a Hierarchy whose latencies follow the paper's
// Table 2 (L1 4clk, L2 12clk, L3 36clk, then main memory).
//
// Timing model: an access at cycle c that misses at every level installs
// the line everywhere with a readiness timestamp; a later access to a line
// still in flight (an MSHR hit) pays only the remaining latency.
package cache

// LineSize is the cache line size in bytes.
const LineSize = 64

type line struct {
	tag     int64
	valid   bool
	lastUse int64 // LRU clock
	readyAt int64 // cycle the fill completes
}

// Cache is one set-associative level.
type Cache struct {
	name     string
	sets     int
	ways     int
	latency  int64
	lines    []line // sets × ways
	lruClock int64

	// Statistics.
	Accesses int64
	Misses   int64
}

// New builds a cache with the given total size in bytes, associativity and
// hit latency in cycles.
func New(name string, sizeBytes, ways int, latency int64) *Cache {
	sets := sizeBytes / LineSize / ways
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		latency: latency,
		lines:   make([]line, sets*ways),
	}
}

// Name returns the level's name ("L1d", "L2", …).
func (c *Cache) Name() string { return c.name }

// Latency returns the level's hit latency.
func (c *Cache) Latency() int64 { return c.latency }

func (c *Cache) set(addr int64) []line {
	blk := addr / LineSize
	s := int(uint64(blk) % uint64(c.sets))
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// lookup returns the way holding addr, or nil.
func (c *Cache) lookup(addr int64) *line {
	tag := addr / LineSize
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// install places addr's line into the cache with the given readiness time,
// evicting the LRU way.
func (c *Cache) install(addr, readyAt int64) *line {
	tag := addr / LineSize
	set := c.set(addr)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	c.lruClock++
	*victim = line{tag: tag, valid: true, lastUse: c.lruClock, readyAt: readyAt}
	return victim
}

// Contains reports whether addr's line is resident (regardless of fill
// completion); used by tests and the prefetcher.
func (c *Cache) Contains(addr int64) bool { return c.lookup(addr) != nil }

// Hierarchy chains cache levels over a fixed-latency main memory.
type Hierarchy struct {
	Levels  []*Cache
	MemLat  int64
	MemAccs int64 // accesses that reached main memory

	// PrefetchIssued / PrefetchUseful count prefetcher activity for the
	// power model and statistics.
	PrefetchIssued int64
	PrefetchUseful int64
}

// Config holds one level's geometry.
type Config struct {
	Name    string
	Size    int
	Ways    int
	Latency int64
}

// NewHierarchy builds a hierarchy from level configs (ordered L1 → last
// level) and a main-memory latency.
func NewHierarchy(memLat int64, levels ...Config) *Hierarchy {
	h := &Hierarchy{MemLat: memLat}
	for _, l := range levels {
		h.Levels = append(h.Levels, New(l.Name, l.Size, l.Ways, l.Latency))
	}
	return h
}

// Access performs a demand access to addr at the given cycle and returns
// the cycle at which the data is available. Lines are installed at every
// level on the fill path (inclusive hierarchy).
func (h *Hierarchy) Access(addr, cycle int64) (doneAt int64) {
	return h.access(addr, cycle, false)
}

// Prefetch installs addr's line as if demanded at cycle, without polluting
// demand statistics beyond the levels it fills. Prefetches fill starting at
// the first level that misses.
func (h *Hierarchy) Prefetch(addr, cycle int64) {
	h.PrefetchIssued++
	h.access(addr, cycle, true)
}

func (h *Hierarchy) access(addr, cycle int64, prefetch bool) int64 {
	elapsed := int64(0)
	var missLevels []*Cache
	for _, c := range h.Levels {
		if !prefetch {
			c.Accesses++
		}
		elapsed += c.latency
		if ln := c.lookup(addr); ln != nil {
			c.lruClock++
			ln.lastUse = c.lruClock
			ready := cycle + elapsed
			if ln.readyAt > ready {
				ready = ln.readyAt // in-flight fill: pay the remaining time
			}
			if !prefetch && ln.readyAt > cycle && len(missLevels) == 0 {
				// Demand hit on an in-flight prefetch: it was useful.
				h.PrefetchUseful++
			}
			h.fill(missLevels, addr, ready)
			return ready
		}
		if !prefetch {
			c.Misses++
		}
		missLevels = append(missLevels, c)
	}
	if !prefetch {
		h.MemAccs++
	}
	ready := cycle + elapsed + h.MemLat
	h.fill(missLevels, addr, ready)
	return ready
}

func (h *Hierarchy) fill(levels []*Cache, addr, readyAt int64) {
	for _, c := range levels {
		c.install(addr, readyAt)
	}
}

// Reset clears statistics but keeps cache contents.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Accesses, c.Misses = 0, 0
	}
	h.MemAccs = 0
	h.PrefetchIssued, h.PrefetchUseful = 0, 0
}
