package cache

import "testing"

func skylakeHierarchy() *Hierarchy {
	return NewHierarchy(200,
		Config{Name: "L1d", Size: 32 << 10, Ways: 8, Latency: 4},
		Config{Name: "L2", Size: 256 << 10, Ways: 8, Latency: 12},
		Config{Name: "L3", Size: 1 << 20, Ways: 16, Latency: 36},
	)
}

func TestColdMissThenHit(t *testing.T) {
	h := skylakeHierarchy()
	done := h.Access(0x1000, 0)
	want := int64(4 + 12 + 36 + 200)
	if done != want {
		t.Errorf("cold miss done at %d, want %d", done, want)
	}
	// Second access: L1 hit.
	done = h.Access(0x1000, done)
	if got := done - (4 + 12 + 36 + 200); got != 4 {
		t.Errorf("L1 hit latency = %d, want 4", got)
	}
	if h.Levels[0].Misses != 1 || h.Levels[0].Accesses != 2 {
		t.Errorf("L1 stats = %d/%d, want 1 miss / 2 accesses", h.Levels[0].Misses, h.Levels[0].Accesses)
	}
}

func TestSameLineHits(t *testing.T) {
	h := skylakeHierarchy()
	h.Access(0x1000, 0)
	// Another address in the same 64B line must hit.
	start := int64(1000)
	done := h.Access(0x1038, start)
	if done-start != 4 {
		t.Errorf("same-line access latency = %d, want 4", done-start)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := skylakeHierarchy()
	base := int64(0)
	h.Access(base, 0)
	// Evict base from L1 (8 ways): touch 9 conflicting lines. L1 has
	// 32KB/64B/8 = 64 sets; conflicting stride = 64*64 = 4096.
	for i := 1; i <= 8; i++ {
		h.Access(base+int64(i)*4096, 10_000*int64(i))
	}
	if h.Levels[0].Contains(base) {
		t.Fatal("base line still in L1 after conflict evictions")
	}
	if !h.Levels[1].Contains(base) {
		t.Fatal("base line lost from L2")
	}
	start := int64(1_000_000)
	done := h.Access(base, start)
	if done-start != 4+12 {
		t.Errorf("L2 hit latency = %d, want 16", done-start)
	}
}

func TestInFlightFillPaysRemainingTime(t *testing.T) {
	h := skylakeHierarchy()
	h.Access(0x2000, 0) // ready at 252
	start := int64(100)
	done := h.Access(0x2000, start) // L1 hit on in-flight line
	if done != 252 {
		t.Errorf("MSHR-style hit done at %d, want 252", done)
	}
	// After the fill completes, normal hit latency applies.
	done = h.Access(0x2000, 300)
	if done != 304 {
		t.Errorf("post-fill hit done at %d, want 304", done)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	h := skylakeHierarchy()
	h.Prefetch(0x3000, 0)
	// Demand access long after the prefetch completed: full L1 hit.
	done := h.Access(0x3000, 1000)
	if done != 1004 {
		t.Errorf("post-prefetch access done at %d, want 1004", done)
	}
	if h.PrefetchIssued != 1 {
		t.Errorf("PrefetchIssued = %d, want 1", h.PrefetchIssued)
	}
	// Demand access while the prefetch is in flight: partial hiding.
	h.Prefetch(0x9000, 0)
	done = h.Access(0x9000, 100)
	if done != 252 {
		t.Errorf("in-flight prefetch hit done at %d, want 252", done)
	}
	if h.PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful = %d, want 1", h.PrefetchUseful)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New("tiny", 2*LineSize, 2, 1) // 1 set, 2 ways
	c.install(0*LineSize, 0)
	c.install(1*LineSize, 0)
	// Touch line 0 so line 1 becomes LRU.
	if c.lookup(0) == nil {
		t.Fatal("line 0 missing")
	}
	c.lruClock++
	c.lookup(0).lastUse = c.lruClock
	c.install(2*LineSize, 0)
	if !c.Contains(0) {
		t.Error("MRU line evicted")
	}
	if c.Contains(1 * LineSize) {
		t.Error("LRU line survived")
	}
}

func TestResetClearsStats(t *testing.T) {
	h := skylakeHierarchy()
	h.Access(0x100, 0)
	h.Prefetch(0x5000, 0)
	h.Reset()
	if h.Levels[0].Accesses != 0 || h.MemAccs != 0 || h.PrefetchIssued != 0 {
		t.Error("Reset did not clear statistics")
	}
	if !h.Levels[0].Contains(0x100) {
		t.Error("Reset must keep contents")
	}
}
