package compiler

import (
	"fmt"
	"sort"

	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// Options configures the branch-dependent code detection pass.
type Options struct {
	// NumIDs is the number of compiler branch IDs available, matching the
	// hardware BIT size (Table 2: 8 entries → IDs 1..7; 0 is reserved for
	// "independent").
	NumIDs int
	// MaxRegionLen caps a single setDependency's NUM field; longer regions
	// are fragmented into several setup instructions (§6.1.2 discusses the
	// resulting overhead).
	MaxRegionLen int
	// MarkLoopBranches controls whether loop-closing branches (branches
	// inside their own control-dependent region) are marked. Marking them
	// makes the entire loop body a dependent region: one setup instruction
	// per block per iteration for no commit benefit, since nearly every
	// instruction is dependent anyway. Left unmarked (the default), such a
	// branch simply blocks the Selective ROB head until it resolves —
	// which is cheap, because loop branches resolve quickly — and costs no
	// fetch slots. The ablation benchmarks flip this knob.
	MarkLoopBranches bool
}

// DefaultOptions mirrors the paper's hardware configuration.
func DefaultOptions() Options {
	return Options{NumIDs: 8, MaxRegionLen: 31}
}

// BranchMeta describes one conditional branch in the final, annotated image.
type BranchMeta struct {
	PC       int
	Marked   bool
	ID       int64
	ReconvPC int // PC of the reconvergence point; -1 when none exists
	// TakenLen and FallLen are the static instruction counts from the
	// branch to the reconvergence point along the taken and fall-through
	// paths (shortest block path); used by the timing model to size the
	// wrong-path fetch window.
	TakenLen int
	FallLen  int
	// StaticDeps counts instructions statically marked dependent on this
	// branch.
	StaticDeps int
}

// Meta is the per-image branch metadata the cycle model consumes.
type Meta struct {
	// Branches maps the PC of every conditional branch to its metadata.
	Branches map[int]*BranchMeta
}

// Stats summarises what the pass did.
type Stats struct {
	CondBranches    int
	MarkedBranches  int
	Regions         int
	SetupInsts      int
	DependentInsts  int
	OriginalInsts   int
	AnnotatedInsts  int
	ChainExtensions int
}

// Result is the output of Compile: the annotated program, its laid-out
// image, branch metadata and pass statistics.
type Result struct {
	Program *program.Program
	Image   *program.Image
	Meta    *Meta
	Stats   Stats
}

// Compile runs the full branch-dependent code detection pass (§3 steps A–D)
// on p and returns the annotated program. p is not modified.
func Compile(p *program.Program, opt Options) (*Result, error) {
	if opt.NumIDs <= 1 {
		return nil, fmt.Errorf("compiler: NumIDs must be at least 2, got %d", opt.NumIDs)
	}
	if opt.MaxRegionLen <= 0 {
		opt.MaxRegionLen = DefaultOptions().MaxRegionLen
	}
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			if in.Op.IsSetup() {
				return nil, fmt.Errorf("compiler: program %s already contains setup instructions", p.Name)
			}
		}
	}

	a, err := Analyze(p)
	if err != nil {
		return nil, err
	}

	st := &passState{a: a, opt: opt}
	st.cdSizes()

	// Dep assignment and ID allocation interact: a branch that cannot get
	// an ID must be unmarked, which changes dependence choices. Iterate —
	// the unmarked set only grows, so this terminates.
	unmarked := make([]bool, len(a.branches))
	if !opt.MarkLoopBranches {
		for k, br := range a.branches {
			if br.cd[br.block] {
				// The branch reaches itself before its reconvergence point:
				// a loop-closing branch whose dependent region is the whole
				// body. See Options.MarkLoopBranches.
				unmarked[k] = true
			}
		}
	}
	// §4.5: no marked region may span a synchronisation barrier — the pass
	// runs only between fences, so a branch whose control-dependent region
	// contains one stays unmarked (the hardware serialises there anyway).
	for k, br := range a.branches {
		for b, in := range br.cd {
			if !in {
				continue
			}
			for _, inst := range p.Blocks[b].Insts {
				if inst.Op.IsFence() {
					unmarked[k] = true
				}
			}
		}
	}
	for {
		st.assignDeps(unmarked)
		st.fixupChains(unmarked)
		failed := st.allocateIDs(unmarked)
		if failed == -1 {
			break
		}
		unmarked[failed] = true
	}

	annotated := st.emit()
	img, err := annotated.Layout()
	if err != nil {
		return nil, err
	}
	meta := st.buildMeta(annotated, img)

	st.stats.CondBranches = countCondBranches(p)
	st.stats.OriginalInsts = countInsts(p)
	st.stats.AnnotatedInsts = countInsts(annotated)
	return &Result{Program: annotated, Image: img, Meta: meta, Stats: st.stats}, nil
}

type passState struct {
	a   *Analysis
	opt Options

	cdSize []int
	// chosen[block][idx] is the branch key instruction (block,idx) is
	// marked dependent on, or -1.
	chosen [][]int
	// brDep[key] is the branch key that branch key's own instruction is
	// marked dependent on (the dependence chain), or -1.
	brDep []int
	ids   []int64 // assigned compiler ID per branch key; 0 = unmarked
	stats Stats
}

func (st *passState) cdSizes() {
	st.cdSize = make([]int, len(st.a.branches))
	for k, br := range st.a.branches {
		n := 0
		for _, in := range br.cd {
			if in {
				n++
			}
		}
		st.cdSize[k] = n
	}
}

// candidates returns the branch keys instruction (b,j) must wait for:
// the innermost control dependence plus every data dependence, excluding
// unmarked branches (those serialise commit in hardware instead).
func (st *passState) candidates(b, j int, unmarked []bool) []int {
	deps := st.a.deps[b][j]
	if len(deps) == 0 {
		return nil
	}
	innermost, innerSize := -1, 1<<30
	var out []int
	for key, kind := range deps {
		if unmarked[key] {
			continue
		}
		if kind&depControl != 0 {
			sz := st.cdSize[key]
			if sz < innerSize || (sz == innerSize && st.a.branches[key].pos > st.a.branches[innermost].pos) {
				innermost, innerSize = key, sz
			}
		}
	}
	for key, kind := range deps {
		if unmarked[key] {
			continue
		}
		if kind&depData != 0 || key == innermost {
			out = append(out, key)
		}
	}
	sort.Ints(out)
	return out
}

// choose picks the dynamically most recent candidate: same-iteration
// branches (position before the instruction) beat loop-carried ones
// (position after, reached via a back edge), and within each group the
// closest wins.
func (st *passState) choose(cands []int, instPos int) int {
	best, bestKey := -1, -1
	for _, key := range cands {
		p := st.a.branches[key].pos
		var dist int
		if p < instPos {
			dist = instPos - p // same traversal: p..inst
		} else {
			dist = instPos - p + st.a.numInsts // loop-carried: previous instance
		}
		if bestKey == -1 || dist < best {
			best, bestKey = dist, key
		}
	}
	return bestKey
}

func (st *passState) assignDeps(unmarked []bool) {
	st.chosen = make([][]int, len(st.a.prog.Blocks))
	for b := range st.a.prog.Blocks {
		st.chosen[b] = make([]int, len(st.a.prog.Blocks[b].Insts))
		for j := range st.chosen[b] {
			cands := st.candidates(b, j, unmarked)
			st.chosen[b][j] = st.choose(cands, st.a.layoutPos[b][j])
		}
	}
	st.brDep = make([]int, len(st.a.branches))
	for k, br := range st.a.branches {
		st.brDep[k] = st.chosen[br.block][len(st.a.prog.Blocks[br.block].Insts)-1]
	}
}

// covers reports whether walking the dependence chain from branch c reaches
// branch o. Chains are bounded by the branch count (loop-carried edges make
// the static graph cyclic; dynamically each hop refers to an older
// instance).
func (st *passState) covers(c, o int) bool {
	for steps := 0; c != -1 && steps <= len(st.a.branches); steps++ {
		if c == o {
			return true
		}
		c = st.brDep[c]
	}
	return false
}

// fixupChains enforces that when an instruction has several true branch
// dependencies but can carry only one BranchID, the chosen branch's
// dependence chain transitively covers the others (FIFO commit-queue
// ordering then guarantees safety). Missing coverage is added by extending
// the chain at its tail.
func (st *passState) fixupChains(unmarked []bool) {
	for b := range st.a.prog.Blocks {
		for j := range st.a.prog.Blocks[b].Insts {
			cands := st.candidates(b, j, unmarked)
			if len(cands) < 2 {
				continue
			}
			chosen := st.chosen[b][j]
			for _, o := range cands {
				if o == chosen || st.covers(chosen, o) {
					continue
				}
				// Walk to the chain tail and link it to o.
				t := chosen
				for steps := 0; st.brDep[t] != -1 && steps <= len(st.a.branches); steps++ {
					t = st.brDep[t]
				}
				if t == o || st.brDep[t] != -1 {
					continue // already cyclic/covered; dynamic semantics keep this safe
				}
				st.brDep[t] = o
				tb := st.a.branches[t].block
				st.chosen[tb][len(st.a.prog.Blocks[tb].Insts)-1] = o
				st.stats.ChainExtensions++
			}
		}
	}
}

// allocateIDs colours branches with IDs 1..NumIDs-1 such that no two
// branches with overlapping live spans share an ID (a same-ID branch inside
// the span would clobber the BIT entry between the producing branch and its
// dependents). Returns the key of a branch that could not be coloured, or
// -1 on success.
func (st *passState) allocateIDs(unmarked []bool) int {
	type span struct {
		key      int
		lo, hi   int
		assigned int64
	}
	var spans []span
	for k, br := range st.a.branches {
		if unmarked[k] {
			continue
		}
		lo, hi := br.pos, br.pos
		for b := range st.a.prog.Blocks {
			for j := range st.a.prog.Blocks[b].Insts {
				if st.chosen[b][j] != k {
					continue
				}
				p := st.a.layoutPos[b][j]
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
		}
		spans = append(spans, span{key: k, lo: lo, hi: hi})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })

	st.ids = make([]int64, len(st.a.branches))
	for i := range spans {
		used := map[int64]bool{}
		for j := 0; j < i; j++ {
			if spans[j].hi >= spans[i].lo { // overlap
				used[spans[j].assigned] = true
			}
		}
		var id int64
		for cand := int64(1); cand < int64(st.opt.NumIDs); cand++ {
			if !used[cand] {
				id = cand
				break
			}
		}
		if id == 0 {
			return spans[i].key
		}
		spans[i].assigned = id
		st.ids[spans[i].key] = id
	}
	return -1
}

// emit rebuilds the program with setBranchId before every marked branch and
// setDependency heading every maximal run of same-dependence instructions
// (step D).
func (st *passState) emit() *program.Program {
	out := program.New(st.a.prog.Name)
	out.Data = st.a.prog.Data
	out.FData = st.a.prog.FData
	out.ValidRanges = st.a.prog.ValidRanges

	isMarkedTerm := func(b int) bool {
		for _, br := range st.a.branches {
			if br.block == b && st.ids[br.key] != 0 {
				return true
			}
		}
		return false
	}
	branchByBlock := func(b int) *branchSite {
		for _, br := range st.a.branches {
			if br.block == b {
				return br
			}
		}
		return nil
	}

	for bi, blk := range st.a.prog.Blocks {
		nb, _ := out.AddBlock(blk.Label)
		j := 0
		for j < len(blk.Insts) {
			key := st.chosen[bi][j]
			if key == -1 || st.ids[key] == 0 {
				if j == len(blk.Insts)-1 && isMarkedTerm(bi) {
					br := branchByBlock(bi)
					nb.Insts = append(nb.Insts, isa.Inst{Op: isa.OpSetBranchID, Imm: st.ids[br.key]})
					st.stats.SetupInsts++
				}
				nb.Insts = append(nb.Insts, blk.Insts[j])
				j++
				continue
			}
			// Maximal run with the same dependence.
			end := j
			for end < len(blk.Insts) && st.chosen[bi][end] == key {
				end++
			}
			for start := j; start < end; start += st.opt.MaxRegionLen {
				stop := start + st.opt.MaxRegionLen
				if stop > end {
					stop = end
				}
				nb.Insts = append(nb.Insts, isa.Inst{
					Op:  isa.OpSetDependency,
					Imm: int64(stop - start),
					Aux: st.ids[key],
				})
				st.stats.SetupInsts++
				st.stats.Regions++
				for k := start; k < stop; k++ {
					if k == len(blk.Insts)-1 && isMarkedTerm(bi) {
						br := branchByBlock(bi)
						nb.Insts = append(nb.Insts, isa.Inst{Op: isa.OpSetBranchID, Imm: st.ids[br.key]})
						st.stats.SetupInsts++
					}
					nb.Insts = append(nb.Insts, blk.Insts[k])
					st.stats.DependentInsts++
				}
			}
			j = end
		}
	}
	for k := range st.a.branches {
		if st.ids[k] != 0 {
			st.stats.MarkedBranches++
		}
	}
	return out
}

// buildMeta computes the final-PC branch metadata over the annotated image.
func (st *passState) buildMeta(annotated *program.Program, img *program.Image) *Meta {
	meta := &Meta{Branches: map[int]*BranchMeta{}}

	// Map analysis branches to final PCs via block labels: the branch is
	// the terminator of its (unchanged) block.
	blockStartPC := func(label string) int { return img.StartOf[label] }
	termPC := func(blockIdx int) int {
		blk := annotated.Blocks[blockIdx]
		return blockStartPC(blk.Label) + len(blk.Insts) - 1
	}

	// Static dependent-instruction counts per branch key.
	depCount := make([]int, len(st.a.branches))
	for b := range st.chosen {
		for _, key := range st.chosen[b] {
			if key != -1 && st.ids[key] != 0 {
				depCount[key]++
			}
		}
	}

	for k, br := range st.a.branches {
		pc := termPC(br.block)
		bm := &BranchMeta{
			PC:         pc,
			Marked:     st.ids[k] != 0,
			ID:         st.ids[k],
			ReconvPC:   blockStartPC(annotated.Blocks[br.reconv].Label),
			StaticDeps: depCount[k],
		}
		bm.TakenLen, bm.FallLen = st.pathLens(annotated, img, br)
		meta.Branches[pc] = bm
	}

	// Record unmarked conditional branches (no reconvergence point) too.
	for pc, in := range img.Insts {
		if in.Op.IsCondBranch() {
			if _, ok := meta.Branches[pc]; !ok {
				meta.Branches[pc] = &BranchMeta{PC: pc, ReconvPC: -1}
			}
		}
	}
	return meta
}

// pathLens returns the static instruction counts from the branch to its
// reconvergence block along the taken and fall-through sides (shortest
// block-level path in the annotated program).
func (st *passState) pathLens(annotated *program.Program, img *program.Image, br *branchSite) (taken, fall int) {
	shortest := func(from int) int {
		if from == br.reconv {
			return 0
		}
		type node struct{ b, dist int }
		best := map[int]int{from: len(annotated.Blocks[from].Insts)}
		queue := []node{{from, len(annotated.Blocks[from].Insts)}}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if d, ok := best[n.b]; ok && n.dist > d {
				continue
			}
			for _, s := range annotated.Successors(n.b) {
				if s == br.reconv {
					return n.dist
				}
				nd := n.dist + len(annotated.Blocks[s].Insts)
				if d, ok := best[s]; !ok || nd < d {
					best[s] = nd
					queue = append(queue, node{s, nd})
				}
			}
		}
		return len(img.Insts) // unreachable: treat as maximal
	}
	term, _ := annotated.Blocks[br.block].Terminator()
	takenBlock := annotated.BlockIndex(term.Label)
	fallBlock := br.block + 1
	if takenBlock >= 0 {
		taken = shortest(takenBlock)
	}
	if fallBlock < len(annotated.Blocks) {
		fall = shortest(fallBlock)
	}
	return taken, fall
}

func countCondBranches(p *program.Program) int {
	n := 0
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			if in.Op.IsCondBranch() {
				n++
			}
		}
	}
	return n
}

func countInsts(p *program.Program) int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Insts)
	}
	return n
}
