package compiler

import (
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// slot abstracts a memory location for alias analysis. When a memory
// operand's base register holds a program-wide constant, the access resolves
// to an absolute address (known=true) and alias questions are exact;
// otherwise the access is "unknown" and may alias anything.
type slot struct {
	known bool
	addr  int64
}

// aliasInfo carries the results of the lightweight intraprocedural pointer
// analysis: which registers hold a single constant value for the whole
// program (set once, typically in the entry block, and never redefined).
type aliasInfo struct {
	constReg [isa.NumRegs]struct {
		isConst bool
		val     int64
	}
}

// buildAliasInfo finds registers that are defined exactly once in the whole
// program by a constant-computable instruction. These act as stable region
// bases (frame/global pointers); everything else is treated conservatively.
func buildAliasInfo(p *program.Program) *aliasInfo {
	ai := &aliasInfo{}

	defCount := make([]int, isa.NumRegs)
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			if d, ok := in.Dest(); ok {
				defCount[d]++
			}
		}
	}

	// Iterate to a fixed point so bases derived from other constant bases
	// (addi s1, s0, 64) resolve too.
	for changed := true; changed; {
		changed = false
		for _, b := range p.Blocks {
			for _, in := range b.Insts {
				d, ok := in.Dest()
				if !ok || defCount[d] != 1 || ai.constReg[d].isConst {
					continue
				}
				if v, ok := ai.constValue(in); ok {
					ai.constReg[d].isConst = true
					ai.constReg[d].val = v
					changed = true
				}
			}
		}
	}
	return ai
}

// constValue evaluates in if all its inputs are known constants.
func (ai *aliasInfo) constValue(in isa.Inst) (int64, bool) {
	get := func(r isa.Reg) (int64, bool) {
		if r == isa.X0 {
			return 0, true
		}
		c := ai.constReg[r]
		return c.val, c.isConst
	}
	switch in.Op {
	case isa.OpAddi:
		if v, ok := get(in.Rs1); ok {
			return v + in.Imm, true
		}
	case isa.OpLui:
		return in.Imm << 12, true
	case isa.OpAdd:
		v1, ok1 := get(in.Rs1)
		v2, ok2 := get(in.Rs2)
		if ok1 && ok2 {
			return v1 + v2, true
		}
	case isa.OpSlli:
		if v, ok := get(in.Rs1); ok {
			return v << (uint64(in.Imm) & 63), true
		}
	}
	return 0, false
}

// slotOf resolves a memory operand (base register + offset) to a slot.
func (ai *aliasInfo) slotOf(base isa.Reg, off int64) slot {
	if base == isa.X0 {
		return slot{known: true, addr: off}
	}
	if c := ai.constReg[base]; c.isConst {
		return slot{known: true, addr: c.val + off}
	}
	return slot{}
}
