package compiler_test

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/progtest"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// TestBundleRoundTrip: save/load a compiled workload and verify the loaded
// image and metadata produce an identical simulation.
func TestBundleRoundTrip(t *testing.T) {
	w, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(w.Build(80), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := compiler.SaveBundle(res)
	if err != nil {
		t.Fatal(err)
	}
	img, meta, err := compiler.LoadBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Branches) != len(res.Meta.Branches) {
		t.Fatalf("meta branches %d != %d", len(meta.Branches), len(res.Meta.Branches))
	}
	for pc, want := range res.Meta.Branches {
		got := meta.Branches[pc]
		if got == nil || *got != *want {
			t.Errorf("branch meta at pc %d: %+v != %+v", pc, got, want)
		}
	}

	cfg := pipeline.SkylakeConfig()
	cfg.Policy = pipeline.Noreba

	tr1, err := emulator.New(res.Image).Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := pipeline.NewCore(cfg, tr1, res.Meta).Run()
	if err != nil {
		t.Fatal(err)
	}

	tr2, err := emulator.New(img).Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := pipeline.NewCore(cfg, tr2, meta).Run()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cycles != st2.Cycles {
		t.Errorf("bundle round trip changed timing: %d vs %d cycles", st1.Cycles, st2.Cycles)
	}
}

func TestBundleRejectsGarbage(t *testing.T) {
	if _, _, err := compiler.LoadBundle([]byte("nope")); err == nil {
		t.Error("bad magic accepted")
	}
	res, err := compiler.Compile(progtest.Generate(2), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := compiler.SaveBundle(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{6, 12, len(data) / 2, len(data) - 2} {
		if _, _, err := compiler.LoadBundle(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
