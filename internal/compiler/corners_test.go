package compiler

import (
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// TestNestedHammocksInnermostWins: an instruction inside two nested
// hammocks must be marked dependent on the inner branch.
func TestNestedHammocksInnermostWins(t *testing.T) {
	p := program.MustAssemble("nested", `
entry:
	li a0, 1
	li a1, 1
	beqz a0, outerjoin
outerthen:
	addi a2, a2, 1
	beqz a1, innerjoin
innerthen:
	addi a3, a3, 1
	addi a4, a4, 1
innerjoin:
	addi a5, a5, 1
outerjoin:
	halt
`)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Branches()) != 2 {
		t.Fatalf("branches = %d, want 2", len(a.Branches()))
	}
	// innerthen is block 3 (entry=0, outerthen=1, innerthen=2? count:
	// entry, outerthen, innerthen, innerjoin, outerjoin).
	inner := p.BlockIndex("innerthen")
	outerKey, innerKey := -1, -1
	for _, br := range a.Branches() {
		if br.block == p.BlockIndex("entry") {
			outerKey = br.key
		}
		if br.block == p.BlockIndex("outerthen") {
			innerKey = br.key
		}
	}
	if outerKey < 0 || innerKey < 0 {
		t.Fatal("branch keys not found")
	}
	deps := a.DepsOf(inner, 0)
	if deps[innerKey]&depControl == 0 {
		t.Error("innerthen not control dependent on the inner branch")
	}
	if deps[outerKey]&depControl == 0 {
		t.Error("innerthen not control dependent on the outer branch")
	}

	// After Compile, the chosen single dependence must be the inner branch
	// (innermost-wins, §3 step B).
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var innerMeta *BranchMeta
	for _, bm := range res.Meta.Branches {
		if bm.Marked && res.Image.BlockOf[bm.PC] == res.Program.BlockIndex("outerthen") {
			innerMeta = bm
		}
	}
	if innerMeta == nil {
		t.Fatal("inner branch not marked")
	}
	if innerMeta.StaticDeps == 0 {
		t.Error("inner branch has no static dependents; innermost-wins violated")
	}
}

// TestChainExtensionForMultiDependence: an instruction data-dependent on
// two sibling hammocks can carry only one BranchID; the pass must link the
// chosen branch's chain to cover the other.
func TestChainExtensionForMultiDependence(t *testing.T) {
	p := program.MustAssemble("multidep", `
entry:
	li s0, 0x1000
	li a0, 1
	li a1, 0
	beqz a0, join1
then1:
	sw a0, 0(s0)
join1:
	addi t0, t0, 1
	beqz a1, join2
then2:
	sw a1, 8(s0)
join2:
	lw t1, 0(s0)
	lw t2, 8(s0)
	add t3, t1, t2
	halt
`)
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// t3's chain depends on both stores; the pass must either cover both
	// via a chain extension or serialise — count that at least one chain
	// extension happened or both join2 loads carry dependences.
	if res.Stats.ChainExtensions == 0 && res.Stats.DependentInsts < 4 {
		t.Errorf("multi-dependence not covered: extensions=%d dependents=%d\n%s",
			res.Stats.ChainExtensions, res.Stats.DependentInsts, res.Image.Disassemble())
	}
	// Semantics must hold regardless.
	img, _ := p.Layout()
	m1 := emulator.New(img)
	m1.Run(1 << 16)
	m2 := emulator.New(res.Image)
	m2.Run(1 << 16)
	if m1.IntRegs != m2.IntRegs {
		t.Error("annotation changed semantics")
	}
}

// TestIDExhaustionFallsBackToUnmarked: more simultaneously-live hammocks
// than compiler IDs force some branches to stay unmarked, never to share
// clashing IDs.
func TestIDExhaustionFallsBackToUnmarked(t *testing.T) {
	b := program.NewBuilder("many")
	b.Label("entry").Li(isa.A0, 1)
	// 12 overlapping hammock regions: each branch's dependent region
	// reaches past the next branches via data flow through s0 stores.
	b.Li(isa.S0, 0x1000)
	for i := 0; i < 12; i++ {
		this := string(rune('a' + i))
		b.Beqz(isa.A0, "join"+this)
		b.Label("then" + this)
		b.Sw(isa.A0, isa.S0, int64(i*8))
		b.Label("join" + this)
		b.Lw(isa.T0, isa.S0, int64(i*8))
		b.Add(isa.A2, isa.A2, isa.T0)
	}
	b.Halt()
	p := b.MustBuild()

	opt := DefaultOptions()
	opt.NumIDs = 4 // only 3 usable IDs
	res, err := Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MarkedBranches > 12 {
		t.Errorf("marked %d branches", res.Stats.MarkedBranches)
	}
	// IDs in use must stay within the space.
	for _, bm := range res.Meta.Branches {
		if bm.Marked && (bm.ID < 1 || bm.ID >= 4) {
			t.Errorf("branch at pc %d has out-of-space ID %d", bm.PC, bm.ID)
		}
	}
	// Semantics preserved.
	img, _ := p.Layout()
	m1 := emulator.New(img)
	m1.Run(1 << 16)
	m2 := emulator.New(res.Image)
	m2.Run(1 << 16)
	if m1.IntRegs != m2.IntRegs {
		t.Error("annotation changed semantics")
	}
}

// TestUnknownAliasConservative: a store through an unknown pointer inside a
// hammock taints subsequent loads from any address.
func TestUnknownAliasConservative(t *testing.T) {
	p := program.MustAssemble("alias", `
entry:
	li s0, 0x1000
	lw t6, 0(s0)
	li a0, 1
	beqz a0, join
arm:
	sw a0, 0(t6)
join:
	lw a5, 8(s0)
	addi a6, a5, 1
	halt
`)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	br := a.Branches()[0]
	join := p.BlockIndex("join")
	if a.DepsOf(join, 0)[br.key]&depData == 0 {
		t.Error("load after may-aliasing store not marked data dependent")
	}
}

// TestKnownDistinctSlotsNotAliased: stores to one constant-base slot must
// not taint loads from a different slot.
func TestKnownDistinctSlotsNotAliased(t *testing.T) {
	p := program.MustAssemble("noalias", `
entry:
	li s0, 0x1000
	li a0, 1
	beqz a0, join
arm:
	sw a0, 0(s0)
join:
	lw a5, 64(s0)
	addi a6, a5, 1
	halt
`)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	br := a.Branches()[0]
	join := p.BlockIndex("join")
	if d := a.DepsOf(join, 0); d != nil && d[br.key]&depData != 0 {
		t.Error("load from a distinct constant slot wrongly marked dependent")
	}
}

// TestRegionFollowsTakenEntry: a region at a jump target must be preceded
// by its own setDependency (the marker is fetched on entry).
func TestRegionFollowsTakenEntry(t *testing.T) {
	res, err := Compile(program.MustAssemble("taken", `
entry:
	li a0, 0
	beqz a0, target
fall:
	addi a1, a1, 1
	j join
target:
	addi a2, a2, 1
	addi a3, a3, 1
join:
	halt
`), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := res.Image.Disassemble()
	// Both arms are control dependent; each block must carry its own
	// region marker.
	if strings.Count(text, "setDependency") < 2 {
		t.Errorf("per-entry region markers missing:\n%s", text)
	}
}

// TestBranchWithoutReconvergenceUnmarked: a branch whose arms both halt has
// no reconvergence point and must stay unmarked.
func TestBranchWithoutReconvergenceUnmarked(t *testing.T) {
	res, err := Compile(program.MustAssemble("noreconv", `
entry:
	li a0, 1
	beqz a0, b
a:
	halt
b:
	halt
`), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, bm := range res.Meta.Branches {
		if bm.Marked {
			t.Errorf("branch without reconvergence marked (pc %d)", bm.PC)
		}
		if bm.ReconvPC != -1 && bm.Marked {
			t.Errorf("bogus reconvergence pc %d", bm.ReconvPC)
		}
	}
}
