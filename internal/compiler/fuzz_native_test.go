package compiler

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/progtest"
)

// FuzzCompilerPass: the branch-dependent code detection pass must accept any
// valid CFG the generator produces — never panic, never error — and its
// annotated output may differ from the input only by the setup instructions
// it inserted. Hardware-size knobs (BIT entries, region length) are fuzzed
// alongside the program to exercise fragmentation and ID-exhaustion paths.
func FuzzCompilerPass(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(31), false)
	f.Add(int64(7), uint8(2), uint8(1), false)   // minimum IDs, maximal fragmentation
	f.Add(int64(42), uint8(255), uint8(3), true) // huge BIT, loop marking on
	f.Add(int64(-5), uint8(4), uint8(63), true)

	f.Fuzz(func(t *testing.T, seed int64, numIDs, maxRegion uint8, markLoops bool) {
		p := progtest.Generate(seed)
		opt := Options{
			NumIDs:           2 + int(numIDs)%254,
			MaxRegionLen:     1 + int(maxRegion)%63,
			MarkLoopBranches: markLoops,
		}
		res, err := Compile(p, opt)
		if err != nil {
			t.Fatalf("seed %d opt %+v: pass rejected a valid CFG: %v", seed, opt, err)
		}
		st := res.Stats
		if st.AnnotatedInsts-st.SetupInsts != st.OriginalInsts {
			t.Fatalf("seed %d opt %+v: %d annotated - %d setup != %d original — pass added or dropped real instructions",
				seed, opt, st.AnnotatedInsts, st.SetupInsts, st.OriginalInsts)
		}
		// Every instruction of the annotated image is either a setup
		// instruction or present in the original program's count.
		setup := 0
		for _, in := range res.Image.Insts {
			if in.Op.IsSetup() {
				setup++
			}
		}
		if setup != st.SetupInsts {
			t.Fatalf("seed %d opt %+v: image has %d setup instructions, stats claim %d",
				seed, opt, setup, st.SetupInsts)
		}
		if len(res.Image.Insts) != st.AnnotatedInsts {
			t.Fatalf("seed %d opt %+v: image has %d instructions, stats claim %d",
				seed, opt, len(res.Image.Insts), st.AnnotatedInsts)
		}
	})
}
