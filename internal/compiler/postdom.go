// Package compiler implements NOREBA's branch-dependent code detection pass
// (§3 of the paper): it finds each conditional branch's reconvergence point
// (the immediate post-dominator in the CFG), the instructions control- and
// data-dependent on the branch, and rewrites the program with setBranchId /
// setDependency setup instructions that communicate this to the hardware.
package compiler

import (
	"github.com/noreba-sim/noreba/internal/program"
)

// virtualExit is the node index used for the synthetic exit block that all
// terminating blocks flow to; it is always len(blocks).

// postDominators computes, for every block of p, its immediate
// post-dominator using the Cooper–Harvey–Kennedy iterative algorithm run on
// the reverse CFG with a virtual exit node. The returned slice maps block
// index → immediate post-dominator block index; the virtual exit is
// len(blocks), and blocks that cannot reach the exit (infinite loops) get -1.
func postDominators(p *program.Program) []int {
	n := len(p.Blocks)
	exit := n

	// Reverse-CFG successor sets: rsucc[b] = predecessors of b in the
	// reverse graph = successors of b in the original graph (plus the exit
	// edges). We need, for the reverse graph, each node's predecessors —
	// which are the original successors.
	succs := make([][]int, n+1)
	for i := 0; i < n; i++ {
		s := p.Successors(i)
		if len(s) == 0 {
			s = []int{exit}
		}
		succs[i] = s
	}

	// Reverse post-order of the reverse CFG = order of decreasing
	// post-order in a DFS from exit following original-predecessor edges.
	preds := p.Predecessors()
	// Which blocks reach exit? DFS from exit over reverse edges (exit's
	// "successors" in the reverse graph are blocks whose original
	// successors include exit, i.e. terminating blocks).
	revSuccs := make([][]int, n+1) // reverse-graph successors (= original predecessors)
	for i := 0; i < n; i++ {
		revSuccs[i] = preds[i]
	}
	for i := 0; i < n; i++ {
		for _, s := range succs[i] {
			if s == exit {
				revSuccs[exit] = append(revSuccs[exit], i)
			}
		}
	}

	order := make([]int, 0, n+1) // postorder of DFS from exit in reverse graph
	visited := make([]bool, n+1)
	var dfs func(u int)
	dfs = func(u int) {
		visited[u] = true
		for _, v := range revSuccs[u] {
			if !visited[v] {
				dfs(v)
			}
		}
		order = append(order, u)
	}
	dfs(exit)

	// Reverse post-order (excluding exit, which is processed implicitly).
	rpo := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	rpoNum := make([]int, n+1)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}

	idom := make([]int, n+1)
	for i := range idom {
		idom[i] = -1
	}
	idom[exit] = exit

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == exit {
				continue
			}
			// Predecessors of b in the reverse graph are b's original
			// successors.
			newIdom := -1
			for _, s := range succs[b] {
				if idom[s] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}

	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = idom[i]
	}
	return out
}
