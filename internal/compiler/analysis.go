package compiler

import (
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// instRef identifies an instruction inside a (pre-insertion) program.
type instRef struct {
	block int
	idx   int
}

// branchSite is one conditional branch the pass analyses.
type branchSite struct {
	key    int // index into Analysis.branches
	block  int // block whose terminator is the branch
	reconv int // reconvergence block (immediate post-dominator); -1 if none
	// cd[b] is true when block b is control-dependent on this branch
	// (reachable between the branch and the reconvergence point).
	cd []bool
	// pos is the layout position of the branch instruction in the
	// pre-insertion program (for recency ordering).
	pos int
}

// Analysis holds the results of steps A–C of the pass for one program.
type Analysis struct {
	prog     *program.Program
	alias    *aliasInfo
	ipdom    []int
	branches []*branchSite
	// layoutPos[block][idx] is the pre-insertion linear position.
	layoutPos [][]int
	numInsts  int
	// deps[block][idx] is the set of branch keys instruction (block,idx)
	// depends on (control or data).
	deps [][]map[int]depKind
}

type depKind uint8

const (
	depControl depKind = 1 << iota
	depData
)

// Analyze runs steps A (reconvergence points), B (control-dependent
// instructions) and C (data-dependent instructions) on p.
func Analyze(p *program.Program) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{
		prog:  p,
		alias: buildAliasInfo(p),
		ipdom: postDominators(p),
	}
	pos := 0
	a.layoutPos = make([][]int, len(p.Blocks))
	a.deps = make([][]map[int]depKind, len(p.Blocks))
	for i, b := range p.Blocks {
		a.layoutPos[i] = make([]int, len(b.Insts))
		a.deps[i] = make([]map[int]depKind, len(b.Insts))
		for j := range b.Insts {
			a.layoutPos[i][j] = pos
			pos++
		}
	}
	a.numInsts = pos

	a.findBranches()
	for _, br := range a.branches {
		a.markControlDeps(br)
		a.markDataDeps(br)
	}
	return a, nil
}

// findBranches locates every conditional branch with a well-defined
// reconvergence point (step A). Branches whose immediate post-dominator is
// the virtual exit are left unanalysed: the hardware treats them as unmarked
// branches and serialises commit at them.
func (a *Analysis) findBranches() {
	exit := len(a.prog.Blocks)
	for i, b := range a.prog.Blocks {
		term, ok := b.Terminator()
		if !ok || !term.Op.IsCondBranch() {
			continue
		}
		r := a.ipdom[i]
		if r == -1 || r == exit {
			continue
		}
		br := &branchSite{
			key:    len(a.branches),
			block:  i,
			reconv: r,
			cd:     make([]bool, len(a.prog.Blocks)),
			pos:    a.layoutPos[i][len(b.Insts)-1],
		}
		a.branches = append(a.branches, br)
	}
}

// markControlDeps performs step B: every block reachable from the branch's
// successors without passing through the reconvergence point is control
// dependent, and each of its instructions gains a control dependence on the
// branch.
func (a *Analysis) markControlDeps(br *branchSite) {
	var stack []int
	seen := make([]bool, len(a.prog.Blocks))
	for _, s := range a.prog.Successors(br.block) {
		if s != br.reconv && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		br.cd[b] = true
		for j := range a.prog.Blocks[b].Insts {
			a.addDep(b, j, br.key, depControl)
		}
		for _, s := range a.prog.Successors(b) {
			if s != br.reconv && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
}

func (a *Analysis) addDep(block, idx, key int, k depKind) {
	m := a.deps[block][idx]
	if m == nil {
		m = make(map[int]depKind, 2)
		a.deps[block][idx] = m
	}
	m[key] |= k
}

// taintState is the forward dataflow state of step C for one branch: which
// registers and memory slots may carry values that differ depending on the
// path the branch takes.
type taintState struct {
	regs    uint64 // bitmask over 64 architectural registers
	slots   map[int64]bool
	anyMem  bool // some unknown-address store wrote a tainted value
	reached bool
}

func (s *taintState) clone() *taintState {
	c := &taintState{regs: s.regs, anyMem: s.anyMem, reached: s.reached}
	c.slots = make(map[int64]bool, len(s.slots))
	for k := range s.slots {
		c.slots[k] = true
	}
	return c
}

// merge unions o into s and reports whether s changed.
func (s *taintState) merge(o *taintState) bool {
	changed := false
	if !s.reached && o.reached {
		s.reached = true
		changed = true
	}
	if n := s.regs | o.regs; n != s.regs {
		s.regs = n
		changed = true
	}
	if o.anyMem && !s.anyMem {
		s.anyMem = true
		changed = true
	}
	for k := range o.slots {
		if !s.slots[k] {
			s.slots[k] = true
			changed = true
		}
	}
	return changed
}

func (s *taintState) regTainted(r isa.Reg) bool { return r != isa.X0 && s.regs&(1<<uint(r)) != 0 }
func (s *taintState) taintReg(r isa.Reg) {
	if r != isa.X0 {
		s.regs |= 1 << uint(r)
	}
}
func (s *taintState) untaintReg(r isa.Reg) {
	if r != isa.X0 {
		s.regs &^= 1 << uint(r)
	}
}

// markDataDeps performs step C for one branch: seeds taint from the
// definitions made inside the control-dependent region and propagates it
// forward from the reconvergence point to a fixed point, marking every
// instruction that consumes tainted state as data dependent on the branch.
func (a *Analysis) markDataDeps(br *branchSite) {
	seed := &taintState{slots: map[int64]bool{}, reached: true}
	for b, in := range br.cd {
		if !in {
			continue
		}
		for _, inst := range a.prog.Blocks[b].Insts {
			if d, ok := inst.Dest(); ok {
				seed.taintReg(d)
			}
			if inst.Op.IsStore() {
				sl := a.alias.slotOf(inst.Rs1, inst.Imm)
				if sl.known {
					seed.slots[sl.addr] = true
				} else {
					seed.anyMem = true
				}
			}
		}
	}
	if seed.regs == 0 && len(seed.slots) == 0 && !seed.anyMem {
		return
	}

	n := len(a.prog.Blocks)
	in := make([]*taintState, n)
	for i := range in {
		in[i] = &taintState{slots: map[int64]bool{}}
	}
	in[br.reconv].merge(seed)

	work := []int{br.reconv}
	queued := make([]bool, n)
	queued[br.reconv] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		if !in[b].reached {
			continue
		}
		out := in[b].clone()
		a.applyBlockTaint(br, b, out, false)
		for _, s := range a.prog.Successors(b) {
			st := out
			// Re-seed when control re-enters the region through the
			// reconvergence point (loops around the hammock).
			if in[s].merge(st) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}

	// Final marking pass: with converged entry states, record which
	// instructions read tainted state.
	for b := 0; b < n; b++ {
		if !in[b].reached {
			continue
		}
		st := in[b].clone()
		a.applyBlockTaint(br, b, st, true)
	}
}

// applyBlockTaint runs the per-instruction transfer function over block b.
// When mark is true it records data dependences on the analysis.
func (a *Analysis) applyBlockTaint(br *branchSite, b int, st *taintState, mark bool) {
	for j, inst := range a.prog.Blocks[b].Insts {
		if inst.Op.IsFence() {
			// §4.5: the pass operates only between synchronisation
			// barriers; dependence information does not cross a fence.
			st.regs = 0
			st.anyMem = false
			for k := range st.slots {
				delete(st.slots, k)
			}
			continue
		}
		tainted := false
		for _, s := range inst.Sources() {
			if st.regTainted(s) {
				tainted = true
			}
		}
		if inst.Op.IsLoad() {
			sl := a.alias.slotOf(inst.Rs1, inst.Imm)
			switch {
			case sl.known && (st.slots[sl.addr] || st.anyMem):
				tainted = true
			case !sl.known && (len(st.slots) > 0 || st.anyMem):
				tainted = true
			}
		}
		if inst.Op.IsStore() {
			sl := a.alias.slotOf(inst.Rs1, inst.Imm)
			valueTainted := st.regTainted(inst.Rs2)
			addrTainted := st.regTainted(inst.Rs1)
			switch {
			case sl.known && (valueTainted || addrTainted):
				st.slots[sl.addr] = true
				tainted = true
			case sl.known && !valueTainted && !st.anyMem:
				delete(st.slots, sl.addr) // overwritten with a clean value
			case !sl.known && (valueTainted || addrTainted):
				st.anyMem = true
				tainted = true
			}
		}
		if d, ok := inst.Dest(); ok {
			if tainted {
				st.taintReg(d)
			} else {
				st.untaintReg(d)
			}
		}
		if tainted && mark {
			a.addDep(b, j, br.key, depData)
		}
	}
}

// Branches returns the analysed branch sites.
func (a *Analysis) Branches() []*branchSite { return a.branches }

// ReconvergenceBlock returns the reconvergence block index of the branch
// terminating the given block, or -1.
func (a *Analysis) ReconvergenceBlock(block int) int {
	for _, br := range a.branches {
		if br.block == block {
			return br.reconv
		}
	}
	return -1
}

// DepsOf returns the dependence set of instruction (block, idx).
func (a *Analysis) DepsOf(block, idx int) map[int]depKind { return a.deps[block][idx] }
