package compiler

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/noreba-sim/noreba/internal/program"
)

// Bundle format (.nrb): a compiled program ready to simulate — the laid-out
// annotated image plus the per-branch metadata the timing model's
// misprediction-window fetch consumes. noreba-compile writes bundles;
// noreba-sim runs them without re-running the pass.
//
// Layout: magic "NRBB", u32 image length, image container bytes
// (program.Image.MarshalBinary), u32 branch count, then per branch:
// u32 pc, u8 marked, u32 id, i32 reconvPC, u32 takenLen, u32 fallLen,
// u32 staticDeps.
const bundleMagic = "NRBB"

// SaveBundle serialises a compile result.
func SaveBundle(res *Result) ([]byte, error) {
	img, err := res.Image.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(bundleMagic)
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	u32(uint32(len(img)))
	buf.Write(img)

	pcs := make([]int, 0, len(res.Meta.Branches))
	for pc := range res.Meta.Branches {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	u32(uint32(len(pcs)))
	for _, pc := range pcs {
		bm := res.Meta.Branches[pc]
		u32(uint32(bm.PC))
		if bm.Marked {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		u32(uint32(bm.ID))
		u32(uint32(int32(bm.ReconvPC)))
		u32(uint32(bm.TakenLen))
		u32(uint32(bm.FallLen))
		u32(uint32(bm.StaticDeps))
	}
	return buf.Bytes(), nil
}

// LoadBundle parses a bundle into an image and its branch metadata.
func LoadBundle(data []byte) (*program.Image, *Meta, error) {
	if len(data) < 8 || string(data[:4]) != bundleMagic {
		return nil, nil, fmt.Errorf("compiler: bad bundle magic")
	}
	pos := 4
	u32 := func() (uint32, error) {
		if pos+4 > len(data) {
			return 0, fmt.Errorf("compiler: truncated bundle")
		}
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	imgLen, err := u32()
	if err != nil {
		return nil, nil, err
	}
	if pos+int(imgLen) > len(data) {
		return nil, nil, fmt.Errorf("compiler: truncated bundle image")
	}
	img, err := program.UnmarshalImage(data[pos : pos+int(imgLen)])
	if err != nil {
		return nil, nil, err
	}
	pos += int(imgLen)

	n, err := u32()
	if err != nil {
		return nil, nil, err
	}
	meta := &Meta{Branches: map[int]*BranchMeta{}}
	for i := uint32(0); i < n; i++ {
		pc, err := u32()
		if err != nil {
			return nil, nil, err
		}
		if pos >= len(data) {
			return nil, nil, fmt.Errorf("compiler: truncated bundle meta")
		}
		marked := data[pos] == 1
		pos++
		id, err1 := u32()
		reconv, err2 := u32()
		taken, err3 := u32()
		fall, err4 := u32()
		deps, err5 := u32()
		for _, e := range []error{err1, err2, err3, err4, err5} {
			if e != nil {
				return nil, nil, e
			}
		}
		meta.Branches[int(pc)] = &BranchMeta{
			PC: int(pc), Marked: marked, ID: int64(id),
			ReconvPC: int(int32(reconv)), TakenLen: int(taken), FallLen: int(fall),
			StaticDeps: int(deps),
		}
	}
	return img, meta, nil
}
