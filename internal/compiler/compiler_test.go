package compiler

import (
	"strconv"
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// figure2 reproduces the paper's Figure 2 if-then-else hammock: two arms
// writing -20(s0) and -24(s0), then a join block whose first four
// instructions are independent of the branch and whose last six are data
// dependent on the arms' stores.
func figure2(t *testing.T) *program.Program {
	t.Helper()
	return program.MustAssemble("figure2", `
BB1:
	li   s0, 0x1000
	li   a5, 1
	beq  a5, zero, L1
BB2:
	lw   a4, -40(s0)
	lw   a5, -36(s0)
	add  a5, a4, a5
	sw   a5, -20(s0)
	lw   a4, -40(s0)
	lw   a5, -36(s0)
	sub  a5, a4, a5
	sw   a5, -24(s0)
	j    L2
L1:
	lw   a4, -40(s0)
	lw   a5, -36(s0)
	sub  a5, a4, a5
	sw   a5, -20(s0)
	lw   a4, -40(s0)
	lw   a5, -36(s0)
	add  a5, a4, a5
	sw   a5, -24(s0)
L2:
	lw   a4, -40(s0)
	lw   a5, -36(s0)
	xor  a5, a5, a4
	sw   a5, -52(s0)
	lw   a5, -20(s0)
	xor  a5, a5, a4
	sw   a5, -48(s0)
	lw   a5, -24(s0)
	xor  a5, a5, a4
	sw   a5, -56(s0)
	halt
`)
}

func TestPostDominatorsDiamond(t *testing.T) {
	p := figure2(t)
	ipdom := postDominators(p)
	// Blocks: 0=BB1 1=BB2 2=L1 3=L2
	if ipdom[0] != 3 {
		t.Errorf("ipdom(BB1) = %d, want 3 (L2)", ipdom[0])
	}
	if ipdom[1] != 3 || ipdom[2] != 3 {
		t.Errorf("ipdom(arms) = %d, %d; want 3, 3", ipdom[1], ipdom[2])
	}
	// L2 post-dominated by the virtual exit.
	if ipdom[3] != len(p.Blocks) {
		t.Errorf("ipdom(L2) = %d, want virtual exit %d", ipdom[3], len(p.Blocks))
	}
}

func TestPostDominatorsLoop(t *testing.T) {
	p := program.MustAssemble("loop", `
entry:
	li a0, 0
	li a2, 10
loop:
	addi a0, a0, 1
	blt  a0, a2, loop
done:
	halt
`)
	ipdom := postDominators(p)
	// Blocks: 0=entry 1=loop 2=done
	if ipdom[1] != 2 {
		t.Errorf("ipdom(loop) = %d, want 2 (done)", ipdom[1])
	}
}

func TestAnalyzeFigure2ControlDeps(t *testing.T) {
	p := figure2(t)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Branches()) != 1 {
		t.Fatalf("branches = %d, want 1", len(a.Branches()))
	}
	br := a.Branches()[0]
	if br.reconv != 3 {
		t.Errorf("reconvergence block = %d, want 3 (L2)", br.reconv)
	}
	if !br.cd[1] || !br.cd[2] {
		t.Errorf("arms not control dependent: cd = %v", br.cd)
	}
	if br.cd[0] || br.cd[3] {
		t.Errorf("BB1/L2 wrongly control dependent: cd = %v", br.cd)
	}
	// Every instruction in the arms carries a control dependence.
	for _, b := range []int{1, 2} {
		for j := range p.Blocks[b].Insts {
			if a.DepsOf(b, j)[br.key]&depControl == 0 {
				t.Errorf("block %d inst %d missing control dep", b, j)
			}
		}
	}
}

func TestAnalyzeFigure2DataDeps(t *testing.T) {
	p := figure2(t)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	br := a.Branches()[0]
	// L2 (block 3): first 4 instructions independent, next 6 data
	// dependent, final halt independent.
	for j := 0; j < 4; j++ {
		if a.DepsOf(3, j) != nil && a.DepsOf(3, j)[br.key] != 0 {
			t.Errorf("L2 inst %d should be independent, deps = %v", j, a.DepsOf(3, j))
		}
	}
	for j := 4; j < 10; j++ {
		if a.DepsOf(3, j)[br.key]&depData == 0 {
			t.Errorf("L2 inst %d should be data dependent", j)
		}
	}
	if a.DepsOf(3, 10) != nil && a.DepsOf(3, 10)[br.key] != 0 {
		t.Errorf("halt should be independent")
	}
}

func TestCompileFigure2Emission(t *testing.T) {
	res, err := Compile(figure2(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := res.Image.Disassemble()
	if !strings.Contains(text, "setBranchId 1") {
		t.Errorf("missing setBranchId:\n%s", text)
	}
	// The arms (8 and 8+1 instructions) and the 6-instruction data region
	// must be covered.
	if !strings.Contains(text, "setDependency 8 1") {
		t.Errorf("missing arm region marking:\n%s", text)
	}
	if !strings.Contains(text, "setDependency 9 1") {
		t.Errorf("missing arm+jump region marking:\n%s", text)
	}
	if !strings.Contains(text, "setDependency 6 1") {
		t.Errorf("missing data-dependent region marking:\n%s", text)
	}
	if res.Stats.MarkedBranches != 1 {
		t.Errorf("MarkedBranches = %d, want 1", res.Stats.MarkedBranches)
	}
	if res.Stats.DependentInsts != 8+9+6 {
		t.Errorf("DependentInsts = %d, want 23", res.Stats.DependentInsts)
	}
}

func TestCompilePreservesSemantics(t *testing.T) {
	sources := map[string]string{
		"figure2": figure2(t).Name, // placeholder; handled below
	}
	_ = sources
	progs := []*program.Program{
		figure2(t),
		program.MustAssemble("loopsum", `
entry:
	li a0, 0
	li a1, 1
	li a2, 101
loop:
	add  a0, a0, a1
	addi a1, a1, 1
	blt  a1, a2, loop
done:
	halt
`),
		program.MustAssemble("nested", `
entry:
	li s0, 0x2000
	li a0, 0
	li a3, 0
outer:
	li a1, 0
inner:
	add  a3, a3, a0
	add  a3, a3, a1
	addi a1, a1, 1
	slti a4, a1, 5
	bnez a4, inner
innerdone:
	sw   a3, 0(s0)
	addi a0, a0, 1
	slti a4, a0, 4
	bnez a4, outer
done:
	lw a5, 0(s0)
	halt
`),
	}
	for _, p := range progs {
		orig, err := p.Layout()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		m1 := emulator.New(orig)
		tr1, err := m1.Run(1 << 20)
		if err != nil {
			t.Fatalf("%s: run original: %v", p.Name, err)
		}

		res, err := Compile(p, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		m2 := emulator.New(res.Image)
		tr2, err := m2.Run(1 << 20)
		if err != nil {
			t.Fatalf("%s: run annotated: %v", p.Name, err)
		}

		if m1.IntRegs != m2.IntRegs {
			t.Errorf("%s: integer state diverged:\n%v\n%v", p.Name, m1.IntRegs, m2.IntRegs)
		}
		if m1.FPRegs != m2.FPRegs {
			t.Errorf("%s: FP state diverged", p.Name)
		}
		for a, v := range m1.Mem {
			if m2.Mem[a] != v {
				t.Errorf("%s: mem[%#x] = %d vs %d", p.Name, a, m2.Mem[a], v)
			}
		}
		// The annotated trace only adds setup instructions.
		if got, want := int64(tr2.Len())-tr2.Setup, int64(tr1.Len()); got != want {
			t.Errorf("%s: non-setup dynamic instructions %d, want %d", p.Name, got, want)
		}
	}
}

const loopSrc = `
entry:
	li a0, 0
	li a2, 10
loop:
	addi a0, a0, 1
	blt  a0, a2, loop
done:
	halt
`

func TestCompileLoopBodyMarkedWhenRequested(t *testing.T) {
	opt := DefaultOptions()
	opt.MarkLoopBranches = true
	res, err := Compile(program.MustAssemble("loop", loopSrc), opt)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Image.Disassemble()
	// The loop body (addi + blt) is control dependent on the loop branch
	// via the back edge.
	if !strings.Contains(text, "setDependency 2 1") {
		t.Errorf("loop body not marked:\n%s", text)
	}
	if !strings.Contains(text, "setBranchId 1") {
		t.Errorf("loop branch not marked:\n%s", text)
	}
}

func TestCompileLoopBranchUnmarkedByDefault(t *testing.T) {
	// A loop-closing branch's dependent region is its whole body, so
	// marking it is pure setup-instruction overhead; the default pass
	// leaves it unmarked (the hardware serialises at unmarked branches
	// until they resolve, which is cheap for fast loop branches).
	res, err := Compile(program.MustAssemble("loop", loopSrc), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SetupInsts != 0 {
		t.Errorf("default pass inserted %d setup instructions for a pure loop:\n%s",
			res.Stats.SetupInsts, res.Image.Disassemble())
	}
}

func TestCompileStraightLineHasNoSetup(t *testing.T) {
	p := program.MustAssemble("straight", `
main:
	li a0, 1
	addi a1, a0, 2
	mul a2, a1, a0
	halt
`)
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SetupInsts != 0 {
		t.Errorf("setup insts = %d, want 0", res.Stats.SetupInsts)
	}
}

func TestCompileRejectsPreAnnotated(t *testing.T) {
	p := program.MustAssemble("pre", `
main:
	setBranchId 1
	halt
`)
	if _, err := Compile(p, DefaultOptions()); err == nil {
		t.Error("Compile accepted pre-annotated program")
	}
}

func TestCompileMeta(t *testing.T) {
	res, err := Compile(figure2(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var marked *BranchMeta
	for _, bm := range res.Meta.Branches {
		if bm.Marked {
			marked = bm
		}
	}
	if marked == nil {
		t.Fatal("no marked branch in meta")
	}
	if got := res.Image.Insts[marked.PC]; !got.Op.IsCondBranch() {
		t.Errorf("meta PC %d is %v, not a branch", marked.PC, got)
	}
	// setBranchId must immediately precede the branch.
	if prev := res.Image.Insts[marked.PC-1]; prev.Op != isa.OpSetBranchID {
		t.Errorf("instruction before branch is %v, want setBranchId", prev)
	}
	if marked.ReconvPC != res.Image.StartOf["L2"] {
		t.Errorf("ReconvPC = %d, want %d", marked.ReconvPC, res.Image.StartOf["L2"])
	}
	if marked.TakenLen <= 0 || marked.FallLen <= 0 {
		t.Errorf("path lengths = %d/%d, want positive", marked.TakenLen, marked.FallLen)
	}
	if marked.StaticDeps != 23 {
		t.Errorf("StaticDeps = %d, want 23", marked.StaticDeps)
	}
}

func TestCompileRegionFragmentation(t *testing.T) {
	// A long arm must be split into several setDependency regions when
	// MaxRegionLen is small.
	b := program.NewBuilder("frag")
	b.Label("entry").Li(isa.A0, 1).Beqz(isa.A0, "skip")
	b.Label("body")
	for i := 0; i < 10; i++ {
		b.Addi(isa.A1, isa.A1, 1)
	}
	b.Label("skip").Halt()
	p := b.MustBuild()

	opt := DefaultOptions()
	opt.MaxRegionLen = 4
	res, err := Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Image.Disassemble()
	if strings.Count(text, "setDependency") < 3 {
		t.Errorf("region not fragmented:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "setDependency") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("bad setDependency line %q", line)
		}
		num, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatalf("bad NUM in %q", line)
		}
		if num > 4 {
			t.Errorf("region length %d exceeds cap 4", num)
		}
	}
}

func TestIDAllocationDistinctForOverlapping(t *testing.T) {
	// Two nested branches must get distinct IDs.
	p := program.MustAssemble("nestedif", `
entry:
	li a0, 1
	li a1, 2
	beqz a0, join
outerbody:
	addi a2, a2, 1
	beqz a1, innerjoin
innerbody:
	addi a3, a3, 1
innerjoin:
	addi a4, a4, 1
join:
	halt
`)
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int64]bool{}
	for _, bm := range res.Meta.Branches {
		if bm.Marked {
			if ids[bm.ID] {
				t.Errorf("duplicate ID %d for overlapping branches", bm.ID)
			}
			ids[bm.ID] = true
		}
	}
	if len(ids) != 2 {
		t.Errorf("marked branches = %d, want 2", len(ids))
	}
}
