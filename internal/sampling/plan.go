package sampling

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/program"
)

// maxWindowCycles bounds one representative's detailed window, mirroring
// RunContext's livelock guard at a scale proportionate to the short streams
// the sampler simulates.
const maxWindowCycles = 1 << 30

// Rep is one representative interval chosen by clustering: the detailed
// simulation unit. Its checkpoint holds the architectural state at the
// start of its warmup span; the measurement window opens once WarmCommits
// instructions have committed (the warmup is simulated in detail but
// excluded from measurement) and closes MeasureCommits later, with the
// stream extended CooldownInsts past the interval so the window closes in
// steady state rather than against a draining pipeline.
type Rep struct {
	// Interval is the represented interval's index in the profile.
	Interval int
	// Weight is the fraction of the program's committed instructions this
	// representative stands for.
	Weight float64
	// ClusterCommitted is the committed-instruction mass of the cluster.
	ClusterCommitted int64
	// WarmStart is the dynamic-instruction index (stream position) where
	// detailed simulation begins.
	WarmStart int64
	// FuncWarmInsts is the functional-warming span immediately before
	// WarmStart: replayed through the caches and predictor at emulator
	// speed, never through the pipeline. The checkpoint is captured at
	// WarmStart − FuncWarmInsts.
	FuncWarmInsts int64
	// WarmCommits is the committed-instruction length of the warmup span.
	WarmCommits int64
	// MeasureCommits is the committed-instruction length of the measured
	// interval.
	MeasureCommits int64
	// SrcBound is the stream length (in delivered instructions, setup
	// included) the detailed window may consume: warmup + interval +
	// cooldown.
	SrcBound int64
	// PilotRep is this representative interval's normalised CPI under each
	// pilot run, and PilotCluster the committed-weighted mean of the same
	// over the whole cluster. The pilots observe every interval's timing, so
	// Estimate can correct the first-order bias of standing a whole cluster
	// on one member: it fits the target configuration's measured
	// representative CPIs as a blend of the pilot dimensions and rescales
	// each representative's cycle contribution by the blend's
	// cluster-mean-to-representative ratio.
	PilotRep     []float64
	PilotCluster []float64
	// Snap is the architectural state at WarmStart − FuncWarmInsts.
	Snap emulator.Snapshot
	// WarmSnap is the architectural state at WarmStart itself — the
	// detailed window's entry point. Estimates restore it directly and
	// install a cached microarchitectural warm state instead of re-playing
	// the functional-warming span, so the warm replay is paid once per
	// (plan, cache/predictor geometry) rather than once per representative
	// per configuration. Snap is retained for the general warming path and
	// for tools that need the warm span's input stream.
	WarmSnap emulator.Snapshot

	// delta, when non-nil, marks Snap and WarmSnap as still holding only
	// the v2 plan file's delta sections (memory entries that differ from
	// the image) plus these tombstones; LoadPlan materializes the full maps
	// against the bound image and clears the marker. See planfile.go.
	delta *repDeltaState
}

// repDeltaState carries the v2 delta sections' tombstones — image addresses
// absent from the checkpoint — between decode and bind time. Plans built by
// BuildPlan never need it (a machine's memory is a superset of the image's
// initial data), but the format keeps deletion representable so a delta
// section is exactly invertible whatever the snapshot's shape.
type repDeltaState struct {
	snapTombs  []int64
	snapFTombs []int64
	warmTombs  []int64
	warmFTombs []int64
}

// Plan is a compiled sampling schedule for one program image: the profile,
// the chosen representatives with their checkpoints, and everything needed
// to estimate any pipeline configuration's full-run statistics from
// detailed simulation of the representatives alone. A Plan is built once
// per (image, Params) and reused across configurations — the profiling and
// checkpoint cost amortises over every policy and core evaluated.
type Plan struct {
	// Name identifies the planned program.
	Name string
	// Params is the normalized sampling configuration the plan was built
	// under.
	Params Params
	// Profile is the interval profile the clustering ran on.
	Profile *Profile
	// Reps are the representatives, ordered by interval index.
	Reps []Rep
	// Full marks a degenerate plan: the program is so short that detailed
	// windows would cost at least as much as simulating everything, so
	// Estimate runs a plain full simulation instead (still tagged with
	// sampling provenance so the caller can see no reduction happened).
	Full bool

	img      *program.Image
	imgHash  [32]byte // sha256 of the image's canonical encoding (ImageHash)
	maxInsts int64
	// warmRate is the pilot run's cycles per delivered instruction for each
	// interval, and warmCum its prefix sum at interval starts (warmCum[j] is
	// the pilot cycle count at Intervals[j].Start; warmCum[n] at stream end).
	// Functional warming replays this schedule so the pseudo-clock's
	// in-flight horizon at window open matches a continuous run's.
	warmRate []float64
	warmCum  []float64

	// warm caches functionally-warmed microarchitectural state per
	// cache/predictor geometry: one warming replay serves every commit
	// policy and every representative window sharing the geometry (warming
	// never touches the pipeline model, so it is policy-independent). Built
	// lazily under a per-key once so concurrent estimates warm at most once.
	warmMu sync.Mutex
	warm   map[warmKey]*warmEntry
}

// warmKey is the subset of pipeline.Config that functional warming can
// observe: cache geometry and latencies, prefetcher setup, predictor kind
// and RAS depth. Commit policy, FreeSetup and ECL shape only the pipeline
// model, which warming never runs, so configurations differing only there
// share one warmed state.
type warmKey struct {
	l1i, l1d, l2, l3            int
	l1Lat, l2Lat, l3Lat, memLat int64
	ways                        int
	prefetch                    bool
	prefDegree, prefTable       int
	pred                        pipeline.PredictorKind
	ras                         int
}

func warmKeyOf(cfg pipeline.Config) warmKey {
	return warmKey{
		l1i: cfg.L1ISize, l1d: cfg.L1DSize, l2: cfg.L2Size, l3: cfg.L3Size,
		l1Lat: cfg.L1Lat, l2Lat: cfg.L2Lat, l3Lat: cfg.L3Lat, memLat: cfg.MemLat,
		ways:     cfg.CacheWays,
		prefetch: cfg.PrefetchEnabled, prefDegree: cfg.PrefetchDegree, prefTable: cfg.PrefetchTable,
		pred: cfg.Predictor,
		ras:  cfg.RASEntries,
	}
}

// warmEntry is one geometry's warmed state, one capture per representative.
type warmEntry struct {
	once   sync.Once
	states []*pipeline.WarmState
	err    error
}

// warmCycleAt returns the pilot run's cumulative cycle count at stream
// position pos, interpolated within intervals at the interval's rate.
func (pl *Plan) warmCycleAt(pos int64) float64 {
	ivs := pl.Profile.Intervals
	lo, hi := 0, len(ivs)
	for lo < hi { // first interval with Start+Insts > pos
		mid := (lo + hi) / 2
		if ivs[mid].Start+ivs[mid].Insts <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(ivs) {
		return pl.warmCum[len(ivs)]
	}
	return pl.warmCum[lo] + pl.warmRate[lo]*float64(pos-ivs[lo].Start)
}

// warmClock builds the functional-warming pseudo-clock for a warm span of n
// instructions starting at stream position snapAt: the pilot's cycle
// schedule shifted to end at cycle 0. Returns nil (the caller's nominal
// default) when the plan has no pilot timing.
func (pl *Plan) warmClock(snapAt, n int64) func(int64) int64 {
	if len(pl.warmRate) == 0 {
		return nil
	}
	end := pl.warmCycleAt(snapAt + n)
	return func(i int64) int64 {
		c := int64(pl.warmCycleAt(snapAt+i+1) - end)
		if c > 0 {
			c = 0
		}
		return c
	}
}

// BuildPlan is BuildPlanContext with a background context.
func BuildPlan(img *program.Image, meta *compiler.Meta, maxInsts int64, p Params) (*Plan, error) {
	return BuildPlanContext(context.Background(), img, meta, maxInsts, p)
}

// BuildPlanContext profiles the image's dynamic instruction stream (bounded
// by maxInsts), clusters its intervals, selects representatives, and
// captures a checkpoint at each representative's warmup start via a second
// fast-forward execution pass. The profiling pass must end cleanly: a
// stream that terminates on a memory exception cannot be sampled (parity
// with the full-run path, which fails on the same error).
//
// Clustering runs on each interval's basic-block vector extended with
// timing columns: its CPI under one detailed pilot run of a fixed in-order
// reference configuration, plus functional memory-latency and branch-
// misprediction fingerprints (see fingerprintDims). Basic-block vectors
// alone identify code phases, but this simulator's kernels exhibit timing
// phases the code mix cannot see — cache and prefetcher feedback regimes
// where byte-identical instruction streams run at several times different
// IPC depending on the microarchitectural context they inherit, and
// branch-resolution regimes that only gate some commit policies. The timing
// columns separate those phases, and double as the control-variate basis
// that corrects representative bias at estimate time; their cost is paid
// once per (image, Params) and amortises across every configuration
// estimated from the plan.
func BuildPlanContext(ctx context.Context, img *program.Image, meta *compiler.Meta, maxInsts int64, p Params) (*Plan, error) {
	p = p.Normalize()
	if !p.Enabled {
		return nil, fmt.Errorf("sampling: BuildPlan with disabled params")
	}
	prof := BuildProfile(emulator.NewSource(emulator.New(img), maxInsts), p.IntervalLen)
	if prof.Err != nil {
		return nil, fmt.Errorf("sampling: %s: profiling pass failed: %w", prof.Name, prof.Err)
	}
	pl := &Plan{Name: prof.Name, Params: p, Profile: prof, img: img, maxInsts: maxInsts}
	if len(prof.Intervals) == 0 {
		pl.Full = true
		return pl, nil
	}

	// Degenerate-size precheck before paying for pilot runs: with k
	// representatives of (warmup + interval + cooldown) instructions each,
	// would sampling even halve the detailed-simulation cost?
	k := p.MaxK
	if n := len(prof.Intervals); k > n {
		k = n
	}
	perRep := p.IntervalLen*int64(1+p.WarmupIntervals) + p.CooldownInsts
	if 2*int64(k)*perRep >= prof.TotalInsts {
		pl.Full = true
		return pl, nil
	}

	vecs := prof.vectors()
	// dims are the per-interval timing columns — the detailed pilot CPI
	// first (the primary control variate), then the functional memory and
	// branch fingerprints. Each is appended to the clustering vectors and
	// kept as the control-variate basis used to correct representative bias
	// at estimate time.
	//
	// The pilot and the fingerprint replay the same stream, so both hang off
	// one shared functional emulation (emulator.Broadcast) instead of
	// re-emulating: the bus pays one emulator pass for two consumers. The
	// profiling pass above stays separate by design — its output feeds the
	// degenerate-size precheck that decides whether the pilot is worth
	// paying for at all — and the checkpoint-capture pass below cannot join
	// either, because the capture positions are only known after clustering
	// has consumed the pilot's output.
	bus := emulator.NewBroadcast(emulator.NewSource(emulator.New(img), maxInsts), 0)
	pilotView := bus.View()
	fpView := bus.View()
	fpDims := make(chan [][]float64, 1)
	go func() {
		defer fpView.Close()
		fpDims <- fingerprintDims(ctx, fpView, meta, prof)
	}()
	cpi, rate, err := pilotCPI(ctx, pilotView, meta, prof, pilotPolicy)
	pilotView.Close()
	fpd := <-fpDims
	if err != nil {
		return nil, err
	}
	pl.warmRate = rate
	pl.warmCum = make([]float64, len(prof.Intervals)+1)
	for i := range prof.Intervals {
		pl.warmCum[i+1] = pl.warmCum[i] + rate[i]*float64(prof.Intervals[i].Insts)
	}
	dims := [][]float64{cpi}
	// Setup-annotation density: policies that fetch setup instructions
	// (FreeSetup off) pay per-interval costs proportional to it, and no
	// FreeSetup pilot or fingerprint can see them.
	setup := make([]float64, len(prof.Intervals))
	for i := range prof.Intervals {
		if iv := &prof.Intervals[i]; iv.Insts > 0 {
			setup[i] = float64(iv.Setup) / float64(iv.Insts)
		}
	}
	if nd := normalizeMean1(setup); nd != nil {
		dims = append(dims, nd)
	}
	dims = append(dims, fpd...)
	pilot := make([][]float64, len(vecs))
	for nd, d := range dims {
		for i := range vecs {
			vecs[i] = append(vecs[i], d[i])
			if nd < 2 {
				pilot[i] = append(pilot[i], d[i])
			}
		}
	}
	assign := KMeans(vecs, p.MaxK, p.KMeansIters, p.Seed)
	pl.Reps = selectReps(prof, vecs, assign, pilot, p)

	var detail int64
	for i := range pl.Reps {
		detail += pl.Reps[i].SrcBound
	}
	if 2*detail >= prof.TotalInsts {
		// Sampling would not even halve the detailed-simulation cost:
		// short program, or warmup/cooldown dominating tiny intervals.
		// Running full costs little and keeps the result exact.
		pl.Full = true
		pl.Reps = nil
		return pl, nil
	}

	if err := pl.capture(); err != nil {
		return nil, err
	}
	return pl, nil
}

// pilotPolicy is the reference commit policy for the single detailed pilot
// run. In-order commit is the cheapest policy to simulate and exposes the
// phases gated by head-of-line blocking and serial dependence chains; the
// phase families it flattens — memory-context and branch-resolution regimes
// — are covered by the functional fingerprint columns instead of a second
// detailed pilot.
const pilotPolicy = pipeline.InOrder

// pilotCPI runs one detailed simulation of a fixed reference configuration
// (the Skylake core under the given commit policy) over src — typically a
// view of the shared build-time broadcast bus — and returns each interval's
// cycles-per-committed-instruction, normalised to the run's mean — one
// timing dimension appended to the clustering vectors — plus the raw cycles
// per delivered instruction (setup included), which drives the
// functional-warming pseudo-clock. Timing phases (cache, prefetcher,
// dependence-chain regimes) that basic-block vectors cannot see separate
// here; the cost is paid once per (image, Params) and amortises across
// every configuration estimated from the plan.
func pilotCPI(ctx context.Context, src emulator.TraceSource, meta *compiler.Meta, prof *Profile, pol pipeline.PolicyKind) ([]float64, []float64, error) {
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = pol
	cfg.FreeSetup = true
	core := pipeline.NewCoreFromSource(cfg, src, meta)

	crossings := make([]int64, len(prof.Intervals))
	var cum int64
	for i := range prof.Intervals {
		cum += prof.Intervals[i].Committed()
		crossings[i] = cum
	}
	cpi := make([]float64, len(prof.Intervals))
	rate := make([]float64, len(prof.Intervals))
	done := ctx.Done()
	var cycle, lastCycle, lastCom int64
	next := 0
	for !core.Done() && next < len(crossings) {
		if done != nil && cycle%4096 == 0 {
			select {
			case <-done:
				return nil, nil, fmt.Errorf("sampling: %s: pilot cancelled: %w", prof.Name, context.Cause(ctx))
			default:
			}
		}
		if cycle > maxWindowCycles {
			return nil, nil, fmt.Errorf("sampling: %s: pilot livelock at cycle %d", prof.Name, cycle)
		}
		core.Step()
		cycle++
		if serr := core.SanityErr(); serr != nil {
			return nil, nil, fmt.Errorf("sampling: %s: pilot: %w", prof.Name, serr)
		}
		for next < len(crossings) && core.CommittedCount() >= crossings[next] {
			com := core.CommittedCount() - lastCom
			if com > 0 {
				cpi[next] = float64(cycle-lastCycle) / float64(com)
			}
			if iv := &prof.Intervals[next]; iv.Insts > 0 {
				rate[next] = float64(cycle-lastCycle) / float64(iv.Insts)
			}
			lastCycle, lastCom = cycle, core.CommittedCount()
			next++
		}
	}
	// Normalise the CPI column to mean 1 so the timing dimension is
	// commensurate with the L1-normalised block dimensions; empty slots in
	// either column get the mean.
	fillMean(rate)
	var sum float64
	var n int
	for _, c := range cpi {
		if c > 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return cpi, rate, nil
	}
	mean := sum / float64(n)
	for i, c := range cpi {
		if c > 0 {
			cpi[i] = c / mean
		} else {
			cpi[i] = 1
		}
	}
	return cpi, rate, nil
}

// fillMean replaces non-positive entries with the mean of the positive ones
// (or 1 if there are none): intervals a multi-interval commit crossing
// skipped still need a defined warm-clock rate.
func fillMean(d []float64) {
	var sum float64
	var n int
	for _, x := range d {
		if x > 0 {
			sum += x
			n++
		}
	}
	mean := 1.0
	if n > 0 {
		mean = sum / float64(n)
	}
	for i, x := range d {
		if x <= 0 {
			d[i] = mean
		}
	}
}

// selectReps turns a cluster assignment into representatives: per cluster,
// the member interval closest to the cluster centroid (lowest index on
// ties), weighted by the cluster's committed-instruction mass and carrying
// the pilot control-variate basis for its cycle correction.
func selectReps(prof *Profile, vecs [][]float64, assign []int, pilot [][]float64, p Params) []Rep {
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	dim := 0
	if len(vecs) > 0 {
		dim = len(vecs[0])
	}
	// Final centroids of the assignment (means), then argmin member.
	sums := make([][]float64, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for i, c := range assign {
		counts[c]++
		for j, x := range vecs[i] {
			sums[c][j] += x
		}
	}
	repIdx := make([]int, k)
	bestD := make([]float64, k)
	for c := range repIdx {
		repIdx[c] = -1
	}
	for i, c := range assign {
		if counts[c] == 0 {
			continue
		}
		// Distance to the centroid scaled by counts[c] to avoid dividing
		// the sums: argmin over members is unchanged.
		var d float64
		for j, x := range vecs[i] {
			diff := x*float64(counts[c]) - sums[c][j]
			d += diff * diff
		}
		if repIdx[c] < 0 || d < bestD[c] {
			repIdx[c], bestD[c] = i, d
		}
	}

	total := prof.TotalCommitted()
	if total <= 0 {
		total = 1
	}
	var reps []Rep
	for c := 0; c < k; c++ {
		ri := repIdx[c]
		if ri < 0 {
			continue // empty cluster (k > intervals)
		}
		nd := len(pilot[ri])
		var clusterCommitted int64
		clusterPilot := make([]float64, nd)
		for i, ci := range assign {
			if ci == c {
				com := prof.Intervals[i].Committed()
				clusterCommitted += com
				for j := 0; j < nd; j++ {
					clusterPilot[j] += pilot[i][j] * float64(com)
				}
			}
		}
		if clusterCommitted > 0 {
			for j := range clusterPilot {
				clusterPilot[j] /= float64(clusterCommitted)
			}
		}
		warmIdx := ri - p.WarmupIntervals
		if warmIdx < 0 {
			warmIdx = 0
		}
		var warmCommits int64
		for i := warmIdx; i < ri; i++ {
			warmCommits += prof.Intervals[i].Committed()
		}
		iv := &prof.Intervals[ri]
		end := iv.Start + iv.Insts
		warmStart := prof.Intervals[warmIdx].Start
		funcWarm := p.FunctionalWarmInsts
		if funcWarm > warmStart {
			funcWarm = warmStart
		}
		reps = append(reps, Rep{
			Interval:         ri,
			Weight:           float64(clusterCommitted) / float64(total),
			ClusterCommitted: clusterCommitted,
			WarmStart:        warmStart,
			FuncWarmInsts:    funcWarm,
			WarmCommits:      warmCommits,
			MeasureCommits:   iv.Committed(),
			SrcBound:         end - warmStart + p.CooldownInsts,
			PilotRep:         cloneVec(pilot[ri]),
			PilotCluster:     clusterPilot,
		})
	}
	// Order by interval index so the capture pass walks the stream forward.
	for i := 1; i < len(reps); i++ {
		for j := i; j > 0 && reps[j].Interval < reps[j-1].Interval; j-- {
			reps[j], reps[j-1] = reps[j-1], reps[j]
		}
	}
	return reps
}

// capture executes the program once more, functionally, pausing at each
// representative's warm-span start (Snap) and at its detailed-window start
// (WarmSnap) to snapshot architectural state. The two position lists can
// interleave across representatives — a later rep's warm span may open
// before an earlier rep's window — so the walk visits the merged, sorted
// positions in one forward pass. Only the needed checkpoints are held —
// never one per interval boundary — so plan memory is O(k · architectural
// state).
func (pl *Plan) capture() error {
	type point struct {
		pos  int64
		rep  int
		warm bool // WarmSnap (at WarmStart) vs Snap (at warm-span start)
	}
	points := make([]point, 0, 2*len(pl.Reps))
	for i := range pl.Reps {
		points = append(points,
			point{pos: pl.Reps[i].WarmStart - pl.Reps[i].FuncWarmInsts, rep: i},
			point{pos: pl.Reps[i].WarmStart, rep: i, warm: true})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].pos < points[j].pos })

	m := emulator.New(pl.img)
	var pos int64
	for _, pt := range points {
		for pos < pt.pos {
			if _, err := m.Step(); err != nil {
				return fmt.Errorf("sampling: %s: fast-forward to %d: %w",
					pl.Name, pt.pos, err)
			}
			pos++
		}
		if pt.warm {
			pl.Reps[pt.rep].WarmSnap = m.Snapshot()
		} else {
			pl.Reps[pt.rep].Snap = m.Snapshot()
		}
	}
	return nil
}

// DetailInsts returns the number of dynamic instructions the plan simulates
// in detail per configuration — the sampler's cost, versus the profile's
// TotalInsts for a full run.
func (pl *Plan) DetailInsts() int64 {
	if pl.Full {
		return pl.Profile.TotalInsts
	}
	var n int64
	for i := range pl.Reps {
		n += pl.Reps[i].SrcBound
	}
	return n
}

// Estimate is EstimateContext with a background context.
func (pl *Plan) Estimate(cfg pipeline.Config, meta *compiler.Meta) (*pipeline.Stats, error) {
	return pl.EstimateContext(context.Background(), cfg, meta)
}

// warmStates returns (building on first use) the warmed microarchitectural
// state for cfg's geometry: one capture per representative, each rebased so
// its cache fill timestamps end at pseudo-cycle 0 where the detailed window
// opens. Safe for concurrent estimates: a per-key once means at most one
// warming replay per geometry, with everyone else waiting on its result.
func (pl *Plan) warmStates(cfg pipeline.Config, meta *compiler.Meta) ([]*pipeline.WarmState, error) {
	key := warmKeyOf(cfg)
	pl.warmMu.Lock()
	if pl.warm == nil {
		pl.warm = map[warmKey]*warmEntry{}
	}
	e := pl.warm[key]
	if e == nil {
		e = &warmEntry{}
		pl.warm[key] = e
	}
	pl.warmMu.Unlock()
	e.once.Do(func() { e.states, e.err = pl.buildWarmStates(cfg, meta) })
	return e.states, e.err
}

// buildWarmStates replays each representative's functional-warming span
// through a core with cfg's geometry and captures the resulting state.
//
// Fast path: under default parameters FunctionalWarmInsts covers the whole
// prefix, so every warm span starts at stream position 0 and the spans are
// nested prefixes ordered by the (interval-sorted) representatives. One
// sequential replay on the pilot's absolute cycle schedule then serves all
// of them: capture at each boundary and shift that capture's cache
// timestamps so its clock ends at 0 (timing is linear in the clock — see
// cache.Hierarchy.ShiftClock), paying max(span) instead of sum(spans).
//
// General path (spans starting mid-stream): one replay per representative
// from its Snap on the per-rep relative clock, exactly as estimates used to
// warm inline — still amortised across every configuration sharing the
// geometry.
func (pl *Plan) buildWarmStates(cfg pipeline.Config, meta *compiler.Meta) ([]*pipeline.WarmState, error) {
	states := make([]*pipeline.WarmState, len(pl.Reps))
	nested := true
	for i := range pl.Reps {
		if pl.Reps[i].WarmStart != pl.Reps[i].FuncWarmInsts {
			nested = false
			break
		}
	}
	if nested && len(pl.Reps) > 0 {
		// Absolute pilot clock and its value at each capture boundary; the
		// nominal 2-cycles-per-instruction fallback mirrors WarmFunctional's
		// nil-clock default (−2·(n−1−i) relative ≡ 2·(i+1) absolute shifted
		// by −2·n).
		clock := func(i int64) int64 { return int64(pl.warmCycleAt(i + 1)) }
		endAt := func(pos int64) int64 { return int64(pl.warmCycleAt(pos)) }
		if len(pl.warmRate) == 0 {
			clock = func(i int64) int64 { return 2 * (i + 1) }
			endAt = func(pos int64) int64 { return 2 * pos }
		}
		// Warm in bounded segments on one persistent machine, capturing at
		// each boundary between segments: same replay, but the hot loop pulls
		// straight from the machine source with no per-instruction wrapper.
		m := emulator.New(pl.img)
		core := pipeline.NewCoreFromSource(cfg, emulator.NewSource(m, 0), meta)
		pos := int64(0)
		for next := 0; next < len(pl.Reps); {
			bound := pl.Reps[next].WarmStart
			if span := bound - pos; span > 0 {
				src := emulator.NewSource(m, span)
				base := pos
				core.WarmFunctional(src, span, func(i int64) int64 { return clock(base + i) })
				pos += src.Counts().Insts
				if pos != bound {
					return nil, fmt.Errorf("sampling: %s: warm replay ended at %d before rep %d boundary %d",
						pl.Name, pos, next, bound)
				}
			}
			for next < len(pl.Reps) && pl.Reps[next].WarmStart == bound {
				ws := core.CaptureWarmState()
				ws.ShiftClock(-endAt(bound))
				states[next] = ws
				next++
			}
		}
		return states, nil
	}

	for i := range pl.Reps {
		rep := &pl.Reps[i]
		m := emulator.NewRestored(pl.img, rep.Snap)
		src := emulator.NewSource(m, rep.FuncWarmInsts)
		core := pipeline.NewCoreFromSource(cfg, src, meta)
		if rep.FuncWarmInsts > 0 {
			snapAt := rep.WarmStart - rep.FuncWarmInsts
			core.WarmFunctional(src, rep.FuncWarmInsts, pl.warmClock(snapAt, rep.FuncWarmInsts))
		}
		states[i] = core.CaptureWarmState()
	}
	return states, nil
}

// EstimateContext is EstimateContextN with a serial (single-worker) window
// schedule.
func (pl *Plan) EstimateContext(ctx context.Context, cfg pipeline.Config, meta *compiler.Meta) (*pipeline.Stats, error) {
	return pl.EstimateContextN(ctx, cfg, meta, 1)
}

// EstimateContextN simulates each representative's detailed window under cfg
// and extrapolates full-run statistics: per-cluster counter rates scaled to
// the cluster's committed-instruction mass and summed. The returned Stats
// carries sampling provenance (Sampled, SampledIntervals,
// SampledDetailInsts) and exact values for the fields the profile knows
// outright (Committed, TraceInsts).
//
// workers bounds how many representative windows run concurrently (≤ 1
// means serial). Each window restores its own emulator.Machine from the
// representative's WarmSnap and installs an independent clone of the shared
// warmed state, so windows share nothing mutable; results land in a slice
// indexed by representative, and the extrapolation consumes them in
// interval order — the estimate is byte-identical for every worker count.
func (pl *Plan) EstimateContextN(ctx context.Context, cfg pipeline.Config, meta *compiler.Meta, workers int) (*pipeline.Stats, error) {
	if pl.Full {
		src := emulator.NewSource(emulator.New(pl.img), pl.maxInsts)
		st, err := pipeline.NewCoreFromSource(cfg, src, meta).RunContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("sampling: %s under %v: %w", pl.Name, cfg.Policy, err)
		}
		st.Sampled = true
		st.SampledIntervals = 0
		st.SampledDetailInsts = st.TraceInsts
		return st, nil
	}

	states, err := pl.warmStates(cfg, meta)
	if err != nil {
		return nil, err
	}
	ms := make([]measured, len(pl.Reps))
	details := make([]int64, len(pl.Reps))
	if workers > len(pl.Reps) {
		workers = len(pl.Reps)
	}
	if workers <= 1 {
		for i := range pl.Reps {
			if err := pl.measureRep(ctx, cfg, meta, i, states[i], &ms[i], &details[i]); err != nil {
				return nil, err
			}
		}
	} else {
		var (
			wg   sync.WaitGroup
			next atomic.Int64
			stop atomic.Bool
		)
		errs := make([]error, len(pl.Reps))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					i := int(next.Add(1) - 1)
					if i >= len(pl.Reps) {
						return
					}
					if err := pl.measureRep(ctx, cfg, meta, i, states[i], &ms[i], &details[i]); err != nil {
						errs[i] = err
						stop.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	// With every representative measured under cfg, fit the pilot blend and
	// apply each representative's cycle correction before extrapolating.
	for i, s := range pilotScales(pl.Reps, ms) {
		ms[i].cycleScale = s
	}

	var detail int64
	for _, d := range details {
		detail += d
	}
	est := extrapolate(ms)
	est.Name = pl.Name
	est.Policy = cfg.Policy.String()
	// Fields the profile knows exactly — no reason to carry rounding error.
	est.Committed = pl.Profile.TotalCommitted()
	est.TraceInsts = pl.Profile.TotalInsts
	est.Sampled = true
	est.SampledIntervals = len(pl.Reps)
	est.SampledDetailInsts = detail
	return &est, nil
}

// measureRep runs one representative's detailed window: restore the
// window-entry checkpoint, install a clone of the warmed
// microarchitectural state, and simulate warmup + measurement.
func (pl *Plan) measureRep(ctx context.Context, cfg pipeline.Config, meta *compiler.Meta, i int, ws *pipeline.WarmState, out *measured, detail *int64) error {
	rep := &pl.Reps[i]
	m := emulator.NewRestored(pl.img, rep.WarmSnap)
	// Seq is rebased before the first pull because sequence numbers double
	// as window indices in the pipeline's dependence tracking.
	m.RebaseSeq()
	src := emulator.NewSource(m, rep.SrcBound)
	core := pipeline.NewWarmCoreFromSource(cfg, src, meta, ws)
	warm, end, err := runWindow(ctx, core, pl.Name, rep.Interval, cfg.Policy,
		rep.WarmCommits, rep.WarmCommits+rep.MeasureCommits)
	if err != nil {
		return err
	}
	if err := src.Err(); err != nil {
		return fmt.Errorf("sampling: %s interval %d under %v: source: %w",
			pl.Name, rep.Interval, cfg.Policy, err)
	}
	*out = measured{
		delta:     deltaStats(end, warm),
		committed: end.Committed - warm.Committed,
		weight:    rep.ClusterCommitted,
	}
	*detail = src.Counts().Insts
	return nil
}

// runWindow steps the core until the measurement window has closed: warm
// statistics are snapshotted at the first commit-count crossing of
// warmTarget (the pre-step state when warmTarget is 0, so counters inflated
// by functional warming still cancel), end statistics at the crossing of
// endTarget — or at stream completion, whichever comes first. Mirrors
// RunContext's cancellation cadence and livelock guard. Errors carry full
// provenance — workload, representative interval and commit policy — so
// callers never have to re-wrap them.
func runWindow(ctx context.Context, core *pipeline.Core, name string, interval int, policy pipeline.PolicyKind, warmTarget, endTarget int64) (warm, end pipeline.Stats, err error) {
	done := ctx.Done()
	warmTaken := warmTarget == 0
	if warmTaken {
		warm = core.StatsSnapshot()
	}
	var cycle int64
	for !core.Done() {
		if done != nil && cycle%4096 == 0 {
			select {
			case <-done:
				return warm, end, fmt.Errorf("sampling: %s interval %d under %v: window cancelled at cycle %d: %w",
					name, interval, policy, cycle, context.Cause(ctx))
			default:
			}
		}
		if cycle > maxWindowCycles {
			return warm, end, fmt.Errorf("sampling: %s interval %d under %v: window livelock: %d cycles at %d committed",
				name, interval, policy, cycle, core.CommittedCount())
		}
		core.Step()
		cycle++
		if serr := core.SanityErr(); serr != nil {
			return warm, end, fmt.Errorf("sampling: %s interval %d under %v: %w", name, interval, policy, serr)
		}
		c := core.CommittedCount()
		if !warmTaken && c >= warmTarget {
			warm = core.StatsSnapshot()
			warmTaken = true
		}
		if warmTaken && c >= endTarget {
			return warm, core.StatsSnapshot(), nil
		}
	}
	// Stream complete before the end target: the cooldown tail was shorter
	// than the stream's remainder (last interval of the program). The final
	// state is the window close.
	if !warmTaken {
		warm = core.StatsSnapshot()
	}
	return warm, core.StatsSnapshot(), nil
}
