package sampling

import (
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
)

// Interval is one fixed-length slice of the dynamic instruction stream with
// its basic-block vector: how many instructions executed under each
// basic-block leader during the interval. The BBV is the SimPoint phase
// fingerprint — intervals executing the same code mix cluster together
// regardless of where in the run they occur.
type Interval struct {
	// Index is the interval's position in stream order.
	Index int
	// Start is the dynamic-instruction index of the interval's first
	// instruction (setup instructions included in the numbering).
	Start int64
	// Insts is the number of instructions delivered in the interval; every
	// interval but the last holds exactly the profile's interval length.
	Insts int64
	// Setup counts setBranchId/setDependency instructions, which the
	// pipeline retires at fetch without entering the committed-instruction
	// count — Committed() converts interval lengths into commit units.
	Setup int64
	// Traps counts instructions delivered with a pending memory exception
	// (at most one, stream-final).
	Traps int64
	// BBV maps basic-block leader PC → instructions executed in that block
	// during the interval.
	BBV map[int]int64
}

// Committed returns the interval's length in committed-instruction units:
// everything delivered except setup instructions, which never enter
// pipeline.Stats.Committed.
func (iv *Interval) Committed() int64 { return iv.Insts - iv.Setup }

// Profile is the result of the functional profiling pass: the stream cut
// into intervals, each with its basic-block vector.
type Profile struct {
	// Name identifies the profiled program.
	Name string
	// IntervalLen is the interval length the stream was cut into.
	IntervalLen int64
	// TotalInsts is the delivered stream length (setup included).
	TotalInsts int64
	// TotalSetup is the stream-wide setup-instruction count.
	TotalSetup int64
	// Intervals holds the profiled intervals in stream order; the last may
	// be shorter than IntervalLen.
	Intervals []Interval
	// Err is the stream's terminal error (a memory exception), if any.
	Err error
}

// TotalCommitted returns the stream length in committed-instruction units.
func (p *Profile) TotalCommitted() int64 { return p.TotalInsts - p.TotalSetup }

// BuildProfile drains a dynamic instruction stream, bucketing it into
// fixed-length intervals and accumulating each interval's basic-block
// vector. A basic block is led by the first instruction after a control
// transfer (conditional branch, jal, jalr), so the vector dimension is the
// set of block leaders actually executed — no static CFG is needed.
func BuildProfile(src emulator.TraceSource, intervalLen int64) *Profile {
	if intervalLen <= 0 {
		intervalLen = DefaultIntervalLen
	}
	p := &Profile{Name: src.Name(), IntervalLen: intervalLen}
	var cur *Interval
	leader := -1
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		if cur == nil || cur.Insts == intervalLen {
			p.Intervals = append(p.Intervals, Interval{
				Index: len(p.Intervals),
				Start: p.TotalInsts,
				BBV:   map[int]int64{},
			})
			cur = &p.Intervals[len(p.Intervals)-1]
		}
		if leader < 0 {
			leader = d.PC
		}
		cur.BBV[leader]++
		cur.Insts++
		p.TotalInsts++
		switch {
		case d.Inst.Op.IsSetup():
			cur.Setup++
			p.TotalSetup++
		case d.Trap:
			cur.Traps++
		}
		if d.Inst.Op.IsCondBranch() || d.Inst.Op == isa.OpJal || d.Inst.Op == isa.OpJalr {
			leader = -1 // next instruction leads a new basic block
		}
	}
	p.Err = src.Err()
	return p
}

// vectors converts the profile's BBVs into dense, L1-normalised vectors over
// the union block dictionary, in a deterministic dimension order, ready for
// k-means. Normalisation makes the short final interval comparable to full
// ones: phase similarity is about the code mix, not the interval length.
func (p *Profile) vectors() [][]float64 {
	dims := map[int]int{}
	var order []int
	for i := range p.Intervals {
		for pc := range p.Intervals[i].BBV {
			if _, ok := dims[pc]; !ok {
				dims[pc] = 0
				order = append(order, pc)
			}
		}
	}
	// Deterministic dimension order: ascending leader PC.
	sortInts(order)
	for i, pc := range order {
		dims[pc] = i
	}
	vecs := make([][]float64, len(p.Intervals))
	for i := range p.Intervals {
		iv := &p.Intervals[i]
		v := make([]float64, len(order))
		if iv.Insts > 0 {
			inv := 1 / float64(iv.Insts)
			for pc, n := range iv.BBV {
				v[dims[pc]] = float64(n) * inv
			}
		}
		vecs[i] = v
	}
	return vecs
}

// sortInts is an insertion sort: the dictionary is small (hundreds of block
// leaders at most) and this keeps the package stdlib-free beyond emulator
// and isa. For larger dictionaries a pdqsort would win; profiling shows the
// clustering pass is dominated by distance computation, not this sort.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
