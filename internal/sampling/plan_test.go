package sampling

import (
	"math"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/workloads"
)

func compileWorkload(t testing.TB, name string, scaleDiv int) *compiler.Result {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	scale := w.DefaultScale / scaleDiv
	if scale < 2 {
		scale = 2
	}
	res, err := compiler.Compile(w.Build(scale), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParamsNormalize(t *testing.T) {
	if got := (Params{Enabled: false, IntervalLen: 99}).Normalize(); got != (Params{}) {
		t.Fatalf("disabled Params normalized to %+v, want zero value", got)
	}
	got := (Params{Enabled: true}).Normalize()
	want := Params{
		Enabled:             true,
		IntervalLen:         DefaultIntervalLen,
		MaxK:                DefaultMaxK,
		WarmupIntervals:     DefaultWarmupIntervals,
		CooldownInsts:       DefaultCooldownInsts,
		FunctionalWarmInsts: DefaultFunctionalWarmInsts,
		KMeansIters:         DefaultKMeansIters,
		Seed:                DefaultSeed,
	}
	if got != want {
		t.Fatalf("Default normalization = %+v, want %+v", got, want)
	}
	neg := (Params{Enabled: true, WarmupIntervals: -1, CooldownInsts: -1, FunctionalWarmInsts: -1}).Normalize()
	if neg.WarmupIntervals != 0 || neg.CooldownInsts != 0 || neg.FunctionalWarmInsts != 0 {
		t.Fatalf("negative means none, got %+v", neg)
	}
}

func TestBuildProfileIntervals(t *testing.T) {
	res := compileWorkload(t, "CRC32", 4)
	prof := BuildProfile(emulator.NewSource(emulator.New(res.Image), 1<<20), 512)
	if prof.Err != nil {
		t.Fatal(prof.Err)
	}
	if len(prof.Intervals) < 2 {
		t.Fatalf("expected multiple intervals, got %d", len(prof.Intervals))
	}
	var insts, setup int64
	for i := range prof.Intervals {
		iv := &prof.Intervals[i]
		if iv.Index != i {
			t.Fatalf("interval %d has Index %d", i, iv.Index)
		}
		if iv.Start != insts {
			t.Fatalf("interval %d starts at %d, want %d", i, iv.Start, insts)
		}
		if i < len(prof.Intervals)-1 && iv.Insts != 512 {
			t.Fatalf("interior interval %d has %d insts, want 512", i, iv.Insts)
		}
		var bbv int64
		for _, n := range iv.BBV {
			bbv += n
		}
		if bbv != iv.Insts {
			t.Fatalf("interval %d BBV mass %d != Insts %d", i, bbv, iv.Insts)
		}
		if iv.Committed() != iv.Insts-iv.Setup {
			t.Fatalf("interval %d Committed() inconsistent", i)
		}
		insts += iv.Insts
		setup += iv.Setup
	}
	if insts != prof.TotalInsts || setup != prof.TotalSetup {
		t.Fatalf("totals %d/%d, intervals sum to %d/%d", prof.TotalInsts, prof.TotalSetup, insts, setup)
	}
	if prof.TotalCommitted() != prof.TotalInsts-prof.TotalSetup {
		t.Fatal("TotalCommitted inconsistent")
	}
}

func TestBuildPlanShortProgramFallsBackToFull(t *testing.T) {
	// sha's whole run is smaller than twice the detailed-window budget, so
	// the plan must degenerate to a full simulation — and its estimate must
	// then be exact, not approximate.
	res := compileWorkload(t, "sha", 2)
	pl, err := BuildPlan(res.Image, res.Meta, 1<<20, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Full {
		t.Fatalf("sha plan not Full: %d reps over %d insts", len(pl.Reps), pl.Profile.TotalInsts)
	}
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = pipeline.Noreba
	full, err := pipeline.NewCoreFromSource(cfg, emulator.NewSource(emulator.New(res.Image), 1<<20), res.Meta).Run()
	if err != nil {
		t.Fatal(err)
	}
	est, err := pl.Estimate(cfg, res.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles != full.Cycles || est.Committed != full.Committed {
		t.Fatalf("Full-plan estimate (%d cycles, %d committed) != full run (%d, %d)",
			est.Cycles, est.Committed, full.Cycles, full.Committed)
	}
	if !est.Sampled || est.SampledIntervals != 0 || est.SampledDetailInsts != full.TraceInsts {
		t.Fatalf("Full-plan provenance wrong: Sampled=%v intervals=%d detail=%d",
			est.Sampled, est.SampledIntervals, est.SampledDetailInsts)
	}
}

func TestBuildPlanSingleIntervalProgram(t *testing.T) {
	// Bounding the stream below one interval length leaves a single partial
	// interval: the precheck must fall back to Full without error.
	res := compileWorkload(t, "CRC32", 4)
	pl, err := BuildPlan(res.Image, res.Meta, 300, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Full {
		t.Fatal("single-interval program did not fall back to Full")
	}
	if len(pl.Profile.Intervals) != 1 {
		t.Fatalf("expected 1 interval, got %d", len(pl.Profile.Intervals))
	}
	if pl.DetailInsts() != pl.Profile.TotalInsts {
		t.Fatalf("Full plan DetailInsts %d != TotalInsts %d", pl.DetailInsts(), pl.Profile.TotalInsts)
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	res := compileWorkload(t, "dijkstra", 4)
	a, err := BuildPlan(res.Image, res.Meta, 1<<20, Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(res.Image, res.Meta, 1<<20, Default())
	if err != nil {
		t.Fatal(err)
	}
	if a.Full != b.Full || len(a.Reps) != len(b.Reps) {
		t.Fatalf("plans differ in shape: %v/%d vs %v/%d", a.Full, len(a.Reps), b.Full, len(b.Reps))
	}
	for i := range a.Reps {
		ra, rb := &a.Reps[i], &b.Reps[i]
		if ra.Interval != rb.Interval || ra.Weight != rb.Weight || ra.WarmStart != rb.WarmStart ||
			ra.WarmCommits != rb.WarmCommits || ra.MeasureCommits != rb.MeasureCommits {
			t.Fatalf("rep %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestPlanRepInvariants(t *testing.T) {
	res := compileWorkload(t, "dijkstra", 4)
	p := Default()
	pl, err := BuildPlan(res.Image, res.Meta, 1<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Full {
		t.Skip("plan degenerated to Full at this scale")
	}
	var weight float64
	var mass int64
	prev := -1
	for i := range pl.Reps {
		rep := &pl.Reps[i]
		if rep.Interval <= prev {
			t.Fatalf("reps not ordered by interval: %d after %d", rep.Interval, prev)
		}
		prev = rep.Interval
		iv := &pl.Profile.Intervals[rep.Interval]
		if rep.MeasureCommits != iv.Committed() {
			t.Fatalf("rep %d MeasureCommits %d != interval committed %d", i, rep.MeasureCommits, iv.Committed())
		}
		if rep.WarmStart > iv.Start || iv.Start-rep.WarmStart > p.IntervalLen*int64(p.WarmupIntervals) {
			t.Fatalf("rep %d warm span [%d,%d) inconsistent", i, rep.WarmStart, iv.Start)
		}
		if rep.SrcBound != iv.Start+iv.Insts-rep.WarmStart+p.CooldownInsts {
			t.Fatalf("rep %d SrcBound %d inconsistent", i, rep.SrcBound)
		}
		if rep.FuncWarmInsts > rep.WarmStart {
			t.Fatalf("rep %d functional warm span %d exceeds stream prefix %d", i, rep.FuncWarmInsts, rep.WarmStart)
		}
		weight += rep.Weight
		mass += rep.ClusterCommitted
	}
	if math.Abs(weight-1) > 1e-9 {
		t.Fatalf("rep weights sum to %v, want 1", weight)
	}
	if mass != pl.Profile.TotalCommitted() {
		t.Fatalf("cluster masses sum to %d, want %d", mass, pl.Profile.TotalCommitted())
	}
	if pl.DetailInsts() >= pl.Profile.TotalInsts/2 {
		t.Fatalf("sampled plan does not halve cost: %d detail vs %d total", pl.DetailInsts(), pl.Profile.TotalInsts)
	}
}

func TestWarmClockSchedule(t *testing.T) {
	res := compileWorkload(t, "dijkstra", 4)
	pl, err := BuildPlan(res.Image, res.Meta, 1<<20, Default())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Full {
		t.Skip("plan degenerated to Full at this scale")
	}
	rep := &pl.Reps[len(pl.Reps)-1]
	snapAt := rep.WarmStart - rep.FuncWarmInsts
	clock := pl.warmClock(snapAt, rep.FuncWarmInsts)
	if clock == nil {
		t.Fatal("sampled plan has no warm clock")
	}
	prev := int64(math.MinInt64)
	step := rep.FuncWarmInsts / 512
	if step < 1 {
		step = 1
	}
	for i := int64(0); i < rep.FuncWarmInsts; i += step {
		c := clock(i)
		if c < prev {
			t.Fatalf("warm clock not monotonic: clock(%d)=%d after %d", i, c, prev)
		}
		if c > 0 {
			t.Fatalf("warm clock positive before window open: clock(%d)=%d", i, c)
		}
		prev = c
	}
	if last := clock(rep.FuncWarmInsts - 1); last != 0 {
		t.Fatalf("warm clock ends at %d, want 0 (window open)", last)
	}
	// The span's total pseudo-cycles follow the pilot schedule: strictly
	// positive and bounded by a sane per-instruction rate.
	span := -clock(0)
	if span <= 0 || span > 64*rep.FuncWarmInsts {
		t.Fatalf("warm span %d pseudo-cycles over %d insts is implausible", span, rep.FuncWarmInsts)
	}
}

func TestEstimateAccuracySmoke(t *testing.T) {
	// One cheap regression canary inside the package: CRC32's phases are
	// regular enough that the estimate must land close to the full run. The
	// cross-workload, cross-policy error table lives in the differential
	// accuracy suite under internal/experiments.
	res := compileWorkload(t, "CRC32", 2)
	pl, err := BuildPlan(res.Image, res.Meta, 1<<20, Default())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Full {
		t.Fatal("CRC32 at half scale should be sampleable")
	}
	for _, pol := range []pipeline.PolicyKind{pipeline.InOrder, pipeline.Noreba} {
		cfg := pipeline.SkylakeConfig()
		cfg.Policy = pol
		if pol != pipeline.Noreba && pol != pipeline.IdealReconv {
			cfg.FreeSetup = true
		}
		full, err := pipeline.NewCoreFromSource(cfg, emulator.NewSource(emulator.New(res.Image), 1<<20), res.Meta).Run()
		if err != nil {
			t.Fatal(err)
		}
		est, err := pl.Estimate(cfg, res.Meta)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(est.IPC()-full.IPC()) / full.IPC()
		if relErr > 0.05 {
			t.Fatalf("%v: sampled IPC %.4f vs full %.4f, error %.1f%% > 5%%",
				pol, est.IPC(), full.IPC(), 100*relErr)
		}
		if est.Committed != full.Committed {
			t.Fatalf("%v: estimate Committed %d != profile-exact %d", pol, est.Committed, full.Committed)
		}
		if !est.Sampled || est.SampledIntervals != len(pl.Reps) || est.SampledDetailInsts >= full.TraceInsts/2 {
			t.Fatalf("%v: sampling provenance wrong: %v/%d/%d", pol, est.Sampled, est.SampledIntervals, est.SampledDetailInsts)
		}
	}
}
