package sampling

import (
	"math"
	"reflect"
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

func TestKMeansEmptyInput(t *testing.T) {
	if got := KMeans(nil, 4, 8, DefaultSeed); got != nil {
		t.Fatalf("KMeans(nil) = %v, want nil", got)
	}
}

func TestKMeansSingleVector(t *testing.T) {
	got := KMeans([][]float64{{1, 2}}, 4, 8, DefaultSeed)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("KMeans(single) = %v, want [0]", got)
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	vecs := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	got := KMeans(vecs, 10, 16, DefaultSeed)
	if len(got) != len(vecs) {
		t.Fatalf("assignment length %d, want %d", len(got), len(vecs))
	}
	for i, c := range got {
		if c < 0 || c >= len(vecs) {
			t.Fatalf("vec %d assigned to cluster %d, outside [0,%d)", i, c, len(vecs))
		}
	}
}

func TestKMeansSeparatesObviousGroups(t *testing.T) {
	// Two tight groups far apart: any sane clustering with k=2 puts each
	// group in its own cluster.
	vecs := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	}
	got := KMeans(vecs, 2, 32, DefaultSeed)
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("low group split across clusters: %v", got)
	}
	if got[3] != got[4] || got[4] != got[5] {
		t.Fatalf("high group split across clusters: %v", got)
	}
	if got[0] == got[3] {
		t.Fatalf("both groups in one cluster: %v", got)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vecs := make([][]float64, 50)
	r := lcg(7)
	for i := range vecs {
		vecs[i] = []float64{
			float64(r.next()%1000) / 1000,
			float64(r.next()%1000) / 1000,
			float64(r.next()%1000) / 1000,
		}
	}
	a := KMeans(vecs, 4, 32, DefaultSeed)
	b := KMeans(vecs, 4, 32, DefaultSeed)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different assignments:\n%v\n%v", a, b)
	}
}

func TestKMeansCoincidentPointsReseed(t *testing.T) {
	// Every point identical: k-means++ initialises coincident centroids and
	// Lloyd iterations leave one cluster empty; reseedEmpty must still keep
	// assignments valid, and with n >= k both clusters end up populated.
	vecs := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	got := KMeans(vecs, 2, 8, DefaultSeed)
	seen := map[int]int{}
	for i, c := range got {
		if c < 0 || c >= 2 {
			t.Fatalf("vec %d assigned to cluster %d, outside [0,2)", i, c)
		}
		seen[c]++
	}
	if len(seen) != 2 {
		t.Fatalf("reseed left an empty cluster: assignments %v", got)
	}
}

func TestSolvePosDef(t *testing.T) {
	beta, ok := solvePosDef([][]float64{{2, 0}, {0, 4}}, []float64{2, 8})
	if !ok {
		t.Fatal("diagonal system reported singular")
	}
	if math.Abs(beta[0]-1) > 1e-12 || math.Abs(beta[1]-2) > 1e-12 {
		t.Fatalf("beta = %v, want [1 2]", beta)
	}
	if _, ok := solvePosDef([][]float64{{1, 1}, {1, 1}}, []float64{1, 1}); ok {
		t.Fatal("singular system reported solvable")
	}
}

func TestPilotScalesNoBasis(t *testing.T) {
	ms := []measured{{committed: 100, weight: 100}}
	got := pilotScales([]Rep{{}}, ms)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("scales = %v, want [1]", got)
	}
}

func TestPilotScalesSingleVariate(t *testing.T) {
	// One basis column, representatives whose measured CPI is exactly
	// proportional to the pilot column: the fit recovers the proportionality
	// and each scale is the cluster/representative pilot ratio.
	reps := []Rep{
		{PilotRep: []float64{1.0}, PilotCluster: []float64{1.2}},
		{PilotRep: []float64{2.0}, PilotCluster: []float64{1.6}},
	}
	ms := []measured{
		{delta: pipeline.Stats{Cycles: 300}, committed: 100, weight: 1000},
		{delta: pipeline.Stats{Cycles: 600}, committed: 100, weight: 1000},
	}
	got := pilotScales(reps, ms)
	if math.Abs(got[0]-1.2) > 1e-6 || math.Abs(got[1]-0.8) > 1e-6 {
		t.Fatalf("scales = %v, want [1.2 0.8]", got)
	}
}

func TestPilotScalesClamped(t *testing.T) {
	reps := []Rep{{PilotRep: []float64{1.0}, PilotCluster: []float64{100.0}}}
	ms := []measured{{delta: pipeline.Stats{Cycles: 200}, committed: 100, weight: 100}}
	got := pilotScales(reps, ms)
	if got[0] != 4 {
		t.Fatalf("scale = %v, want clamp at 4", got[0])
	}
	reps[0].PilotCluster[0] = 0.001
	got = pilotScales(reps, ms)
	if got[0] != 0.25 {
		t.Fatalf("scale = %v, want clamp at 0.25", got[0])
	}
}

func TestPilotScalesUnderdetermined(t *testing.T) {
	// Two basis columns but a single measured representative: rows < nd, so
	// the fit must fall back to the first column as a plain control variate.
	reps := []Rep{{PilotRep: []float64{2.0, 7.0}, PilotCluster: []float64{1.0, 3.0}}}
	ms := []measured{{delta: pipeline.Stats{Cycles: 500}, committed: 100, weight: 100}}
	got := pilotScales(reps, ms)
	if math.Abs(got[0]-0.5) > 1e-9 {
		t.Fatalf("scale = %v, want 0.5 (cluster[0]/rep[0])", got[0])
	}
}

func TestDeltaStats(t *testing.T) {
	warm := pipeline.Stats{Cycles: 100, Committed: 50, WindowPeak: 40}
	end := pipeline.Stats{Cycles: 300, Committed: 150, WindowPeak: 90}
	d := deltaStats(end, warm)
	if d.Cycles != 200 || d.Committed != 100 {
		t.Fatalf("delta = {Cycles:%d Committed:%d}, want {200 100}", d.Cycles, d.Committed)
	}
	if d.WindowPeak != 90 {
		t.Fatalf("WindowPeak = %d, want end value 90 (peaks are not differenced)", d.WindowPeak)
	}
}

func TestExtrapolateWeightsAndScales(t *testing.T) {
	ms := []measured{
		// Cluster of 1000 committed measured over 100: scale ×10.
		{delta: pipeline.Stats{Cycles: 200, Committed: 100, WindowPeak: 30}, committed: 100, weight: 1000},
		// Cluster of 500 over 50 with a ×2 pilot cycle correction.
		{delta: pipeline.Stats{Cycles: 100, Committed: 50, WindowPeak: 80}, committed: 50, weight: 500, cycleScale: 2},
	}
	est := extrapolate(ms)
	if est.Committed != 1500 {
		t.Fatalf("Committed = %d, want 1500", est.Committed)
	}
	// Cycles: 200·10 + 100·10·2 = 4000; only Cycles carries the correction.
	if est.Cycles != 4000 {
		t.Fatalf("Cycles = %d, want 4000", est.Cycles)
	}
	if est.WindowPeak != 80 {
		t.Fatalf("WindowPeak = %d, want max across representatives 80", est.WindowPeak)
	}
}

func TestFillMean(t *testing.T) {
	d := []float64{2, 0, 4}
	fillMean(d)
	if d[1] != 3 {
		t.Fatalf("fillMean gap = %v, want mean 3", d[1])
	}
	all := []float64{0, 0}
	fillMean(all)
	if all[0] != 1 || all[1] != 1 {
		t.Fatalf("fillMean all-zero = %v, want [1 1]", all)
	}
}

func TestNormalizeMean1(t *testing.T) {
	if got := normalizeMean1([]float64{0, 0}); got != nil {
		t.Fatalf("all-zero column = %v, want nil", got)
	}
	got := normalizeMean1([]float64{1, 3})
	if got == nil || math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-1.5) > 1e-12 {
		t.Fatalf("normalizeMean1 = %v, want [0.5 1.5]", got)
	}
}
