// Package sampling implements SimPoint-style sampled simulation: instead of
// replaying a workload's whole dynamic instruction stream through the
// cycle-level pipeline model, it profiles the stream's phase behaviour with
// basic-block vectors, clusters fixed-length intervals with k-means, and
// simulates only one representative interval per cluster in detail — from a
// checkpointed architectural state, after a detailed pipeline warmup — then
// extrapolates full-run statistics from the weighted representatives.
//
// The methodology follows Sherwood et al.'s SimPoint as adapted by
// gem5-style samplers: functional profiling is cheap (two emulator passes),
// detailed simulation is the cost being amortised, and the error introduced
// is bounded empirically by the differential accuracy suite in
// internal/experiments (sampled vs. full IPC per workload × commit policy,
// with the measured error table recorded in testdata).
package sampling

// Tuned defaults. The suite's kernels run tens to hundreds of thousands of
// dynamic instructions, so intervals are far shorter than SimPoint's
// canonical 10M–1B: the goal is the same ~5–10× detailed-instruction
// reduction at single-digit-percent IPC error, scaled to this repository's
// workloads.
const (
	// DefaultIntervalLen is the profiling interval length in dynamic
	// instructions (setup instructions included).
	DefaultIntervalLen = 512
	// DefaultMaxK bounds the number of k-means clusters, and therefore the
	// number of representative intervals simulated in detail.
	DefaultMaxK = 4
	// DefaultWarmupIntervals is how many whole intervals immediately before
	// a representative are simulated in detail — warming the caches, branch
	// predictor and pipeline — but excluded from the measurement.
	DefaultWarmupIntervals = 1
	// DefaultCooldownInsts extends each representative's stream past the
	// interval end so the measurement window closes in steady state (the
	// interval's last commits overlap successor fetch, exactly as in a full
	// run) instead of measuring a pipeline drain per interval. It must cover
	// the front end's commit-to-fetch run-ahead — roughly the instruction
	// window size — or the window's tail measures a fetch-starved pipeline;
	// the measurement stops at the interval-end commit crossing, so only the
	// cooldown instructions the front end actually fetched by then are ever
	// simulated.
	DefaultCooldownInsts = 512
	// DefaultFunctionalWarmInsts is the SMARTS-style functional-warming
	// span: how many instructions immediately before the detailed warmup
	// are replayed through the caches, branch predictor and RAS — at
	// emulator speed, no pipeline timing — so long-lived microarchitectural
	// state is warm when detailed simulation begins. Detailed warmup alone
	// cannot fill multi-megabyte caches from a few hundred instructions;
	// without functional warming every representative pays cold-miss
	// penalties the full run never sees. The default effectively warms from
	// program start for every workload in the registry.
	DefaultFunctionalWarmInsts = 1 << 20
	// DefaultKMeansIters caps Lloyd iterations.
	DefaultKMeansIters = 32
	// DefaultSeed seeds the deterministic k-means++ initialisation.
	DefaultSeed = 1
)

// Params configures sampled simulation. The zero value means "disabled";
// Default() returns an enabled configuration with the tuned defaults. Params
// is a pure value (comparable, deterministically JSON-marshalable), so the
// experiment runner folds it into its simulation cache key and persistent
// store hash — a sampled result can never alias a full-run result.
type Params struct {
	// Enabled turns sampled simulation on.
	Enabled bool
	// IntervalLen is the profiling interval length in dynamic instructions;
	// 0 means DefaultIntervalLen.
	IntervalLen int64
	// MaxK bounds the cluster count; 0 means DefaultMaxK. The effective k
	// never exceeds the number of profiled intervals.
	MaxK int
	// WarmupIntervals is the detailed-warmup length in whole intervals
	// before each representative; 0 means DefaultWarmupIntervals, negative
	// means no warmup.
	WarmupIntervals int
	// CooldownInsts extends each representative's stream past the interval
	// end; 0 means DefaultCooldownInsts, negative means no cooldown.
	CooldownInsts int64
	// FunctionalWarmInsts is the functional-warming span before each
	// representative's detailed warmup; 0 means
	// DefaultFunctionalWarmInsts, negative means no functional warming.
	FunctionalWarmInsts int64
	// KMeansIters caps Lloyd iterations; 0 means DefaultKMeansIters.
	KMeansIters int
	// Seed seeds the deterministic k-means++ initialisation; 0 means
	// DefaultSeed.
	Seed uint64
}

// Default returns the enabled configuration with every knob at its tuned
// default.
func Default() Params { return Params{Enabled: true}.Normalize() }

// Normalize resolves defaults into explicit values so that two Params
// meaning the same sampling schedule compare (and hash) equal: a disabled
// Params collapses to the zero value, an enabled one has every zero field
// replaced by its default and every "negative means none" field clamped.
func (p Params) Normalize() Params {
	if !p.Enabled {
		return Params{}
	}
	if p.IntervalLen <= 0 {
		p.IntervalLen = DefaultIntervalLen
	}
	if p.MaxK <= 0 {
		p.MaxK = DefaultMaxK
	}
	switch {
	case p.WarmupIntervals == 0:
		p.WarmupIntervals = DefaultWarmupIntervals
	case p.WarmupIntervals < 0:
		p.WarmupIntervals = 0
	}
	switch {
	case p.CooldownInsts == 0:
		p.CooldownInsts = DefaultCooldownInsts
	case p.CooldownInsts < 0:
		p.CooldownInsts = 0
	}
	switch {
	case p.FunctionalWarmInsts == 0:
		p.FunctionalWarmInsts = DefaultFunctionalWarmInsts
	case p.FunctionalWarmInsts < 0:
		p.FunctionalWarmInsts = 0
	}
	if p.KMeansIters <= 0 {
		p.KMeansIters = DefaultKMeansIters
	}
	if p.Seed == 0 {
		p.Seed = DefaultSeed
	}
	return p
}
