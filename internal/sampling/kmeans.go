package sampling

// Deterministic, stdlib-only k-means over the profile's normalised
// basic-block vectors. Determinism matters more than clustering quality
// here: the same Params must always produce the same sampling schedule so
// cached results, golden tests and the persistent store hash stay stable.
// All randomness flows through a fixed-seed LCG (the repo's workload
// generator idiom), ties break toward the lowest index, and empty clusters
// are reseeded to the globally farthest point.

// lcg is the repo's splittable linear congruential generator (see
// internal/workloads): good enough to spread k-means++ picks, fully
// deterministic, and no math/rand import.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

// sqDist returns the squared Euclidean distance between two equal-length
// vectors.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters vecs into at most k clusters with Lloyd's algorithm and
// k-means++ initialisation, returning the cluster assignment per vector.
// k is clamped to len(vecs); iters caps the Lloyd iterations (the loop
// exits early on convergence). The result is deterministic in
// (vecs, k, iters, seed).
func KMeans(vecs [][]float64, k, iters int, seed uint64) []int {
	n := len(vecs)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	rng := lcg(seed)
	centroids := initPlusPlus(vecs, k, &rng)
	assign := make([]int, n)
	for iter := 0; iter < iters; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, sqDist(v, centroids[0])
			for c := 1; c < k; c++ {
				if d := sqDist(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		recompute(vecs, assign, centroids)
		reseedEmpty(vecs, assign, centroids)
	}
	return assign
}

// initPlusPlus picks k initial centroids k-means++-style: the first
// uniformly, each subsequent one with probability proportional to its
// squared distance from the nearest centroid chosen so far.
func initPlusPlus(vecs [][]float64, k int, rng *lcg) [][]float64 {
	n := len(vecs)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, cloneVec(vecs[int(rng.next()%uint64(n))]))
	d2 := make([]float64, n)
	for i, v := range vecs {
		d2[i] = sqDist(v, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			// All points coincide with a centroid; fall back to uniform.
			pick = int(rng.next() % uint64(n))
		} else {
			// Scale an integer draw into [0, total) — deterministic and
			// avoids float64 modulo bias concerns at this scale.
			r := float64(rng.next()%(1<<53)) / float64(1<<53) * total
			for pick = 0; pick < n-1; pick++ {
				r -= d2[pick]
				if r < 0 {
					break
				}
			}
		}
		c := cloneVec(vecs[pick])
		centroids = append(centroids, c)
		for i, v := range vecs {
			if d := sqDist(v, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// recompute replaces each centroid with the mean of its assigned vectors;
// a centroid with no members is left in place for reseedEmpty to handle.
func recompute(vecs [][]float64, assign []int, centroids [][]float64) {
	dim := len(vecs[0])
	counts := make([]int, len(centroids))
	sums := make([][]float64, len(centroids))
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for i, v := range vecs {
		c := assign[i]
		counts[c]++
		for j, x := range v {
			sums[c][j] += x
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range sums[c] {
			centroids[c][j] = sums[c][j] * inv
		}
	}
}

// reseedEmpty moves each empty cluster's centroid onto the point farthest
// from its current centroid and reassigns that point, so k requested
// clusters stay k populated clusters whenever n >= k.
func reseedEmpty(vecs [][]float64, assign []int, centroids [][]float64) {
	counts := make([]int, len(centroids))
	for _, c := range assign {
		counts[c]++
	}
	for c := range centroids {
		if counts[c] > 0 {
			continue
		}
		far, farD := -1, -1.0
		for i, v := range vecs {
			// Only steal from clusters that can spare a member.
			if counts[assign[i]] <= 1 {
				continue
			}
			if d := sqDist(v, centroids[assign[i]]); d > farD {
				far, farD = i, d
			}
		}
		if far < 0 {
			continue // n < k: some clusters legitimately stay empty
		}
		counts[assign[far]]--
		assign[far] = c
		counts[c] = 1
		copy(centroids[c], vecs[far])
	}
}

func cloneVec(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}
