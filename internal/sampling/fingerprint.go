package sampling

import (
	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/program"
)

// fingerprintDims replays the stream through the reference core's caches,
// prefetcher and branch predictor at emulator speed (no pipeline timing)
// and distils two per-interval timing columns: mean data-access latency
// beyond an L1 hit, and control-transfer misprediction rate. These separate
// the timing-phase families a detailed out-of-order pilot run would see —
// memory-bound regimes shaped by prefetcher and fill context, and
// branch-resolution-bound regimes that gate non-speculative commit — at a
// small fraction of a pilot's cost. Columns are normalised to mean 1 so
// they are commensurate with the pilot-CPI dimension; an all-zero column
// (no misses, or no mispredictions) carries no signal and is dropped.
func fingerprintDims(img *program.Image, meta *compiler.Meta, maxInsts int64, prof *Profile) [][]float64 {
	cfg := pipeline.SkylakeConfig()
	src := emulator.NewSource(emulator.New(img), maxInsts)
	core := pipeline.NewCoreFromSource(cfg, src, meta)

	n := len(prof.Intervals)
	mem := make([]float64, n)
	mis := make([]float64, n)
	idx := 0
	var pos int64
	core.FingerprintFunctional(src, func(memExtra int64, mispred bool) {
		for idx < n && pos >= prof.Intervals[idx].Start+prof.Intervals[idx].Insts {
			idx++
		}
		pos++
		if idx >= n {
			return
		}
		mem[idx] += float64(memExtra)
		if mispred {
			mis[idx]++
		}
	})
	for i := range prof.Intervals {
		if insts := prof.Intervals[i].Insts; insts > 0 {
			mem[i] /= float64(insts)
			mis[i] /= float64(insts)
		}
	}

	var dims [][]float64
	for _, d := range [][]float64{mem, mis} {
		if nd := normalizeMean1(d); nd != nil {
			dims = append(dims, nd)
		}
	}
	return dims
}

// normalizeMean1 rescales a non-negative column to mean 1, or returns nil
// for a column with no mass.
func normalizeMean1(d []float64) []float64 {
	var sum float64
	for _, x := range d {
		sum += x
	}
	if sum <= 0 {
		return nil
	}
	mean := sum / float64(len(d))
	out := make([]float64, len(d))
	for i, x := range d {
		out[i] = x / mean
	}
	return out
}
