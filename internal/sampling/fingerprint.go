package sampling

import (
	"context"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

// fingerprintDims replays the stream from src — typically a view of the
// build-time broadcast bus shared with the pilot run — through the
// reference core's caches, prefetcher and branch predictor at emulator
// speed (no pipeline timing) and distils two per-interval timing columns:
// mean data-access latency beyond an L1 hit, and control-transfer
// misprediction rate. These separate the timing-phase families a detailed
// out-of-order pilot run would see — memory-bound regimes shaped by
// prefetcher and fill context, and branch-resolution-bound regimes that
// gate non-speculative commit — at a small fraction of a pilot's cost.
// Columns are normalised to mean 1 so they are commensurate with the
// pilot-CPI dimension; an all-zero column (no misses, or no mispredictions)
// carries no signal and is dropped. Cancelling ctx ends the replay early
// (the caller's pilot fails with the cancellation; partial columns are
// discarded with it).
func fingerprintDims(ctx context.Context, src emulator.TraceSource, meta *compiler.Meta, prof *Profile) [][]float64 {
	cfg := pipeline.SkylakeConfig()
	src = &cancellableSource{TraceSource: src, ctx: ctx}
	core := pipeline.NewCoreFromSource(cfg, src, meta)

	n := len(prof.Intervals)
	mem := make([]float64, n)
	mis := make([]float64, n)
	idx := 0
	var pos int64
	core.FingerprintFunctional(src, func(memExtra int64, mispred bool) {
		for idx < n && pos >= prof.Intervals[idx].Start+prof.Intervals[idx].Insts {
			idx++
		}
		pos++
		if idx >= n {
			return
		}
		mem[idx] += float64(memExtra)
		if mispred {
			mis[idx]++
		}
	})
	for i := range prof.Intervals {
		if insts := prof.Intervals[i].Insts; insts > 0 {
			mem[i] /= float64(insts)
			mis[i] /= float64(insts)
		}
	}

	var dims [][]float64
	for _, d := range [][]float64{mem, mis} {
		if nd := normalizeMean1(d); nd != nil {
			dims = append(dims, nd)
		}
	}
	return dims
}

// cancellableSource ends a stream early once its context is cancelled,
// checking every 4096 deliveries. Consumers that have no early-exit path of
// their own (FingerprintFunctional drains its source to the end) wrap their
// source in one so a cancelled build does not replay the whole stream.
type cancellableSource struct {
	emulator.TraceSource
	ctx context.Context
	n   int
}

func (s *cancellableSource) Next() (emulator.DynInst, bool) {
	s.n++
	if s.n&4095 == 0 && s.ctx.Err() != nil {
		return emulator.DynInst{}, false
	}
	return s.TraceSource.Next()
}

// normalizeMean1 rescales a non-negative column to mean 1, or returns nil
// for a column with no mass.
func normalizeMean1(d []float64) []float64 {
	var sum float64
	for _, x := range d {
		sum += x
	}
	if sum <= 0 {
		return nil
	}
	mean := sum / float64(len(d))
	out := make([]float64, len(d))
	for i, x := range d {
		out[i] = x / mean
	}
	return out
}
