package sampling

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/program"
)

// The NRPF plan file is the on-disk form of a compiled sampling Plan: the
// interval profile, the pilot timing columns that drive the warming clock,
// and every representative with both of its checkpoints (architectural state
// at the warm-span start and at the detailed-window start). Persisting a
// plan amortises the expensive build passes — profiling, the detailed pilot
// run, clustering, checkpoint capture — across process restarts and across
// cluster replicas, exactly as results are amortised through the
// content-addressed store.
//
// Layout (all integers varint/uvarint unless noted):
//
//	magic "NRPF", version u8
//	name, params (IntervalLen MaxK WarmupIntervals CooldownInsts
//	              FunctionalWarmInsts KMeansIters Seed), maxInsts
//	image hash (32 raw bytes, ImageHash)
//	full flag u8
//	profile: TotalInsts TotalSetup, interval count,
//	         per interval Start Insts Setup Traps + sorted BBV pairs
//	warm-columns flag u8; warmRate[n] warmCum[n+1] as fixed float64 bits
//	rep count; per rep the scalar fields, pilot columns, Snap, WarmSnap
//	end marker u8 0xE7, then EOF
//
// Version 2 changes only the snapshot sections: instead of the machine's
// full memory maps, each checkpoint stores the delta against the program
// image's initial data — changed/new entries as sorted (addr, value) pairs,
// then tombstones (image addresses absent from the checkpoint) as a sorted
// address list, for Mem (vs Data) and FMem (vs FData) in turn. Checkpoints
// share almost all of their memory with the image they were captured from,
// so the delta cuts both the file size and the dominant decode cost of the
// warm sampled loop (rebuilding per-rep memory maps). The reader still
// accepts version 1 in full-map form: a stored plan is rebuilt only when
// its content is stale, never because the container format moved on.
//
// Maps (BBVs, snapshot memory) are written sorted by key, so encoding is
// deterministic: one plan, one byte string, one content hash.
const (
	// PlanFileVersion is the NRPF format version new plans are written at.
	// Readers accept planMinVersion..PlanFileVersion; anything else is
	// rejected outright — a stale plan is rebuilt, never reinterpreted.
	PlanFileVersion = 2
	planMinVersion  = 1

	// planKeyTag is the version string folded into PlanKey. Deliberately
	// frozen at v1: the v2 encoding changed the byte container (delta
	// snapshots), not what a plan means, and the reader accepts both
	// versions — so plans already in a content-addressed store stay warm
	// across the format bump.
	planKeyTag = "noreba-plan-v1"

	planMagic = "NRPF"
	planEnd   = 0xE7

	maxPlanNameLen   = 1 << 12
	maxPlanIntervals = 1 << 22
	maxPlanReps      = 1 << 12
	maxPilotDims     = 1 << 8
	maxMapEntries    = 1 << 22
	// sizeHintCap bounds pre-allocation from untrusted counts: a hostile
	// count still has to deliver the bytes before memory grows past this.
	sizeHintCap = 1 << 12
)

// FormatError describes a malformed, truncated or stale plan file, naming
// the byte offset at which decoding failed.
type FormatError struct {
	Offset int64
	Msg    string
	Err    error
}

func (e *FormatError) Error() string {
	s := fmt.Sprintf("sampling: plan file: offset %d: %s", e.Offset, e.Msg)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *FormatError) Unwrap() error { return e.Err }

// AsFormatError unwraps err to a *FormatError, if one is in the chain.
func AsFormatError(err error) (*FormatError, bool) {
	var fe *FormatError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// ImageHash returns the sha256 of a canonical encoding of the program image:
// the identity under which plans are stored and validated. Two images with
// the same hash produce the same dynamic stream, so a plan checkpointed
// against one is valid for the other.
func ImageHash(img *program.Image) [sha256.Size]byte {
	h := sha256.New()
	var scratch [binary.MaxVarintLen64]byte
	writeVarint := func(v int64) {
		h.Write(scratch[:binary.PutVarint(scratch[:], v)])
	}
	writeString := func(s string) {
		writeVarint(int64(len(s)))
		io.WriteString(h, s)
	}
	writeString(img.Name)
	writeVarint(int64(len(img.Insts)))
	for _, in := range img.Insts {
		writeVarint(int64(in.Op))
		writeVarint(int64(in.Rd))
		writeVarint(int64(in.Rs1))
		writeVarint(int64(in.Rs2))
		writeVarint(in.Imm)
		writeVarint(in.Aux)
		writeVarint(int64(in.Target))
	}
	writeVarint(int64(len(img.Data)))
	for _, a := range sortedKeys(img.Data) {
		writeVarint(a)
		writeVarint(img.Data[a])
	}
	writeVarint(int64(len(img.FData)))
	for _, a := range sortedFKeys(img.FData) {
		writeVarint(a)
		writeVarint(int64(math.Float64bits(img.FData[a])))
	}
	writeVarint(int64(len(img.ValidRanges)))
	for _, r := range img.ValidRanges {
		writeVarint(r[0])
		writeVarint(r[1])
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// PlanKey returns the content-store key for a plan: sha256 over the format
// version, the image hash, the stream bound and the normalized parameters.
// Any change to the format, the program or the sampling configuration yields
// a different key, so a stored plan can never be served to a request it was
// not built for.
func PlanKey(img *program.Image, maxInsts int64, p Params) string {
	p = p.Normalize()
	imgHash := ImageHash(img)
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", planKeyTag)
	h.Write(imgHash[:])
	fmt.Fprintf(h, "%d\n%+v\n", maxInsts, p)
	return hex.EncodeToString(h.Sum(nil))
}

func sortedKeys(m map[int64]int64) []int64 {
	ks := make([]int64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedFKeys(m map[int64]float64) []int64 {
	ks := make([]int64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// planWriter serialises into a byte buffer with varint scalars and fixed
// 8-byte float bit patterns.
type planWriter struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (w *planWriter) u8(b byte)      { w.buf.WriteByte(b) }
func (w *planWriter) varint(v int64) { w.buf.Write(w.scratch[:binary.PutVarint(w.scratch[:], v)]) }
func (w *planWriter) uvarint(v uint64) {
	w.buf.Write(w.scratch[:binary.PutUvarint(w.scratch[:], v)])
}

func (w *planWriter) float(f float64) {
	binary.LittleEndian.PutUint64(w.scratch[:8], math.Float64bits(f))
	w.buf.Write(w.scratch[:8])
}

func (w *planWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *planWriter) floats(fs []float64) {
	w.uvarint(uint64(len(fs)))
	for _, f := range fs {
		w.float(f)
	}
}

// snapshotHead writes the fixed part of a checkpoint section, common to the
// v1 (full-map) and v2 (delta) forms.
func (w *planWriter) snapshotHead(s *emulator.Snapshot) {
	for _, r := range s.IntRegs {
		w.varint(r)
	}
	for _, r := range s.FPRegs {
		w.float(r)
	}
	w.varint(int64(s.PC))
	w.varint(s.Seq)
	w.bool(s.Halted)
}

// snapshot writes the v1 checkpoint section: the full memory maps.
func (w *planWriter) snapshot(s *emulator.Snapshot) {
	w.snapshotHead(s)
	w.uvarint(uint64(len(s.Mem)))
	for _, a := range sortedKeys(s.Mem) {
		w.varint(a)
		w.varint(s.Mem[a])
	}
	w.uvarint(uint64(len(s.FMem)))
	for _, a := range sortedFKeys(s.FMem) {
		w.varint(a)
		w.float(s.FMem[a])
	}
}

// snapshotDelta writes the v2 checkpoint section: memory as a delta against
// the image's initial data. Changed or new entries are written as sorted
// (addr, value) pairs; tombstones — base addresses absent from the snapshot
// — as a sorted address list. When tombs/ftombs are non-nil they are written
// as given (the re-encode path for a decoded-but-unbound plan, whose Mem
// maps already hold just the delta); otherwise they are derived from the
// base. A nil base degenerates to "every entry changed, no tombstones",
// which binds correctly for any plan whose checkpoints cover the image's
// data addresses — true of every plan BuildPlan produces, since a machine's
// memory starts as the image data and never deletes.
func (w *planWriter) snapshotDelta(s *emulator.Snapshot, base map[int64]int64, fbase map[int64]float64, tombs, ftombs []int64) {
	w.snapshotHead(s)

	changed := make([]int64, 0, len(s.Mem))
	for a, v := range s.Mem {
		if bv, ok := base[a]; !ok || bv != v {
			changed = append(changed, a)
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	w.uvarint(uint64(len(changed)))
	for _, a := range changed {
		w.varint(a)
		w.varint(s.Mem[a])
	}
	if tombs == nil && base != nil {
		for a := range base {
			if _, ok := s.Mem[a]; !ok {
				tombs = append(tombs, a)
			}
		}
		sort.Slice(tombs, func(i, j int) bool { return tombs[i] < tombs[j] })
	}
	w.uvarint(uint64(len(tombs)))
	for _, a := range tombs {
		w.varint(a)
	}

	fchanged := make([]int64, 0, len(s.FMem))
	for a, v := range s.FMem {
		if bv, ok := fbase[a]; !ok || bv != v {
			fchanged = append(fchanged, a)
		}
	}
	sort.Slice(fchanged, func(i, j int) bool { return fchanged[i] < fchanged[j] })
	w.uvarint(uint64(len(fchanged)))
	for _, a := range fchanged {
		w.varint(a)
		w.float(s.FMem[a])
	}
	if ftombs == nil && fbase != nil {
		for a := range fbase {
			if _, ok := s.FMem[a]; !ok {
				ftombs = append(ftombs, a)
			}
		}
		sort.Slice(ftombs, func(i, j int) bool { return ftombs[i] < ftombs[j] })
	}
	w.uvarint(uint64(len(ftombs)))
	for _, a := range ftombs {
		w.varint(a)
	}
}

func (w *planWriter) bool(b bool) {
	if b {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// EncodePlan serialises the plan into the NRPF byte format. The encoding is
// deterministic: equal plans produce equal bytes.
func EncodePlan(pl *Plan) []byte { return encodePlanAt(pl, PlanFileVersion) }

// encodePlanAt serialises at a specific format version. Production encoding
// is always PlanFileVersion; the backward-compatibility tests use it to
// produce genuine v1 bytes (valid only for plans holding full snapshot maps
// — built or v1-decoded, not v2-decoded-unbound).
func encodePlanAt(pl *Plan, version byte) []byte {
	w := &planWriter{}
	w.buf.WriteString(planMagic)
	w.u8(version)
	w.str(pl.Name)
	p := pl.Params
	w.varint(p.IntervalLen)
	w.varint(int64(p.MaxK))
	w.varint(int64(p.WarmupIntervals))
	w.varint(p.CooldownInsts)
	w.varint(p.FunctionalWarmInsts)
	w.varint(int64(p.KMeansIters))
	w.uvarint(p.Seed)
	w.varint(pl.maxInsts)
	imgHash := pl.imageHash()
	w.buf.Write(imgHash[:])
	w.bool(pl.Full)

	prof := pl.Profile
	w.varint(prof.TotalInsts)
	w.varint(prof.TotalSetup)
	w.uvarint(uint64(len(prof.Intervals)))
	for i := range prof.Intervals {
		iv := &prof.Intervals[i]
		w.varint(iv.Start)
		w.varint(iv.Insts)
		w.varint(iv.Setup)
		w.varint(iv.Traps)
		w.uvarint(uint64(len(iv.BBV)))
		pcs := make([]int, 0, len(iv.BBV))
		for pc := range iv.BBV {
			pcs = append(pcs, pc)
		}
		sort.Ints(pcs)
		for _, pc := range pcs {
			w.varint(int64(pc))
			w.varint(iv.BBV[pc])
		}
	}

	if len(pl.warmRate) > 0 {
		w.u8(1)
		for _, f := range pl.warmRate {
			w.float(f)
		}
		for _, f := range pl.warmCum {
			w.float(f)
		}
	} else {
		w.u8(0)
	}

	w.uvarint(uint64(len(pl.Reps)))
	for i := range pl.Reps {
		r := &pl.Reps[i]
		w.varint(int64(r.Interval))
		w.float(r.Weight)
		w.varint(r.ClusterCommitted)
		w.varint(r.WarmStart)
		w.varint(r.FuncWarmInsts)
		w.varint(r.WarmCommits)
		w.varint(r.MeasureCommits)
		w.varint(r.SrcBound)
		w.floats(r.PilotRep)
		w.floats(r.PilotCluster)
		if version >= 2 {
			var base map[int64]int64
			var fbase map[int64]float64
			var st, sft, wt, wft []int64
			if pl.img != nil {
				base, fbase = pl.img.Data, pl.img.FData
			} else if r.delta != nil {
				// Decoded v2 plan, not yet bound: the Mem maps hold just
				// the delta; write it (and its tombstones) back verbatim.
				st, sft = r.delta.snapTombs, r.delta.snapFTombs
				wt, wft = r.delta.warmTombs, r.delta.warmFTombs
			}
			w.snapshotDelta(&r.Snap, base, fbase, st, sft)
			w.snapshotDelta(&r.WarmSnap, base, fbase, wt, wft)
		} else {
			w.snapshot(&r.Snap)
			w.snapshot(&r.WarmSnap)
		}
	}
	w.u8(planEnd)
	return w.buf.Bytes()
}

// countingReader tracks the byte offset consumed so decode errors can name
// where the file went wrong.
type countingReader struct {
	r   *bufio.Reader
	pos int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.pos++
	}
	return b, err
}

func (c *countingReader) readFull(p []byte) error {
	n, err := io.ReadFull(c.r, p)
	c.pos += int64(n)
	return err
}

// planReader decodes the NRPF byte format, wrapping every failure in a
// *FormatError carrying the offending offset.
type planReader struct {
	cr countingReader
}

func (r *planReader) fail(msg string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = errors.New("truncated file")
	}
	return &FormatError{Offset: r.cr.pos, Msg: msg, Err: err}
}

func (r *planReader) failf(format string, args ...any) error {
	return &FormatError{Offset: r.cr.pos, Msg: fmt.Sprintf(format, args...)}
}

func (r *planReader) u8(what string) (byte, error) {
	b, err := r.cr.ReadByte()
	if err != nil {
		return 0, r.fail("reading "+what, err)
	}
	return b, nil
}

func (r *planReader) bool(what string) (bool, error) {
	b, err := r.u8(what)
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, r.failf("%s: bad boolean byte %#x", what, b)
	}
	return b == 1, nil
}

func (r *planReader) varint(what string) (int64, error) {
	v, err := binary.ReadVarint(&r.cr)
	if err != nil {
		return 0, r.fail("reading "+what, err)
	}
	return v, nil
}

func (r *planReader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(&r.cr)
	if err != nil {
		return 0, r.fail("reading "+what, err)
	}
	return v, nil
}

func (r *planReader) count(what string, max uint64) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, r.failf("%s %d exceeds limit %d", what, v, max)
	}
	return int(v), nil
}

func (r *planReader) float(what string) (float64, error) {
	var raw [8]byte
	if err := r.cr.readFull(raw[:]); err != nil {
		return 0, r.fail("reading "+what, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw[:])), nil
}

func (r *planReader) str(what string, max uint64) (string, error) {
	n, err := r.count(what+" length", max)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if err := r.cr.readFull(b); err != nil {
		return "", r.fail("reading "+what, err)
	}
	return string(b), nil
}

func (r *planReader) floats(what string) ([]float64, error) {
	n, err := r.count(what+" count", maxPilotDims)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = r.float(what); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *planReader) snapshot(what string) (emulator.Snapshot, error) {
	var s emulator.Snapshot
	var err error
	for i := range s.IntRegs {
		if v, err := r.varint(what + " int register"); err != nil {
			return s, err
		} else {
			s.IntRegs[i] = v
		}
	}
	for i := range s.FPRegs {
		if s.FPRegs[i], err = r.float(what + " fp register"); err != nil {
			return s, err
		}
	}
	pc, err := r.varint(what + " pc")
	if err != nil {
		return s, err
	}
	s.PC = int(pc)
	if s.Seq, err = r.varint(what + " seq"); err != nil {
		return s, err
	}
	if s.Halted, err = r.bool(what + " halted"); err != nil {
		return s, err
	}
	nm, err := r.count(what+" memory entries", maxMapEntries)
	if err != nil {
		return s, err
	}
	s.Mem = make(map[int64]int64, hint(nm))
	for i := 0; i < nm; i++ {
		a, err := r.varint(what + " memory address")
		if err != nil {
			return s, err
		}
		v, err := r.varint(what + " memory value")
		if err != nil {
			return s, err
		}
		s.Mem[a] = v
	}
	nf, err := r.count(what+" fp memory entries", maxMapEntries)
	if err != nil {
		return s, err
	}
	s.FMem = make(map[int64]float64, hint(nf))
	for i := 0; i < nf; i++ {
		a, err := r.varint(what + " fp memory address")
		if err != nil {
			return s, err
		}
		v, err := r.float(what + " fp memory value")
		if err != nil {
			return s, err
		}
		s.FMem[a] = v
	}
	return s, nil
}

// snapshotDelta reads the v2 checkpoint section. The returned snapshot's
// Mem/FMem hold only the delta entries; the tombstone lists name base
// addresses the checkpoint deleted. Both stay unresolved until LoadPlan
// binds an image and materializes the full maps.
func (r *planReader) snapshotDelta(what string) (emulator.Snapshot, []int64, []int64, error) {
	var s emulator.Snapshot
	var err error
	for i := range s.IntRegs {
		if s.IntRegs[i], err = r.varint(what + " int register"); err != nil {
			return s, nil, nil, err
		}
	}
	for i := range s.FPRegs {
		if s.FPRegs[i], err = r.float(what + " fp register"); err != nil {
			return s, nil, nil, err
		}
	}
	pc, err := r.varint(what + " pc")
	if err != nil {
		return s, nil, nil, err
	}
	s.PC = int(pc)
	if s.Seq, err = r.varint(what + " seq"); err != nil {
		return s, nil, nil, err
	}
	if s.Halted, err = r.bool(what + " halted"); err != nil {
		return s, nil, nil, err
	}
	nm, err := r.count(what+" changed memory entries", maxMapEntries)
	if err != nil {
		return s, nil, nil, err
	}
	s.Mem = make(map[int64]int64, hint(nm))
	for i := 0; i < nm; i++ {
		a, err := r.varint(what + " memory address")
		if err != nil {
			return s, nil, nil, err
		}
		v, err := r.varint(what + " memory value")
		if err != nil {
			return s, nil, nil, err
		}
		s.Mem[a] = v
	}
	nt, err := r.count(what+" memory tombstones", maxMapEntries)
	if err != nil {
		return s, nil, nil, err
	}
	tombs := make([]int64, 0, hint(nt))
	for i := 0; i < nt; i++ {
		a, err := r.varint(what + " memory tombstone")
		if err != nil {
			return s, nil, nil, err
		}
		tombs = append(tombs, a)
	}
	nf, err := r.count(what+" changed fp memory entries", maxMapEntries)
	if err != nil {
		return s, nil, nil, err
	}
	s.FMem = make(map[int64]float64, hint(nf))
	for i := 0; i < nf; i++ {
		a, err := r.varint(what + " fp memory address")
		if err != nil {
			return s, nil, nil, err
		}
		v, err := r.float(what + " fp memory value")
		if err != nil {
			return s, nil, nil, err
		}
		s.FMem[a] = v
	}
	nft, err := r.count(what+" fp memory tombstones", maxMapEntries)
	if err != nil {
		return s, nil, nil, err
	}
	ftombs := make([]int64, 0, hint(nft))
	for i := 0; i < nft; i++ {
		a, err := r.varint(what + " fp memory tombstone")
		if err != nil {
			return s, nil, nil, err
		}
		ftombs = append(ftombs, a)
	}
	return s, tombs, ftombs, nil
}

// hint caps a pre-allocation size derived from untrusted input: the data
// still has to arrive byte by byte before memory grows past the cap.
func hint(n int) int {
	if n > sizeHintCap {
		return sizeHintCap
	}
	return n
}

// DecodePlan parses NRPF bytes into a Plan without validating them against
// any particular image — the fuzz surface. The returned plan is not usable
// for estimation until bound to an image; use LoadPlan for that.
func DecodePlan(data []byte) (*Plan, [sha256.Size]byte, error) {
	r := &planReader{cr: countingReader{r: bufio.NewReader(bytes.NewReader(data))}}
	var imgHash [sha256.Size]byte

	magic := make([]byte, len(planMagic))
	if err := r.cr.readFull(magic); err != nil {
		return nil, imgHash, r.fail("reading magic", err)
	}
	if string(magic) != planMagic {
		return nil, imgHash, r.failf("bad magic %q (want %q)", magic, planMagic)
	}
	version, err := r.u8("version")
	if err != nil {
		return nil, imgHash, err
	}
	if version < planMinVersion || version > PlanFileVersion {
		return nil, imgHash, r.failf("unsupported plan version %d (want %d..%d)",
			version, planMinVersion, PlanFileVersion)
	}

	pl := &Plan{}
	if pl.Name, err = r.str("plan name", maxPlanNameLen); err != nil {
		return nil, imgHash, err
	}
	p := Params{Enabled: true}
	if p.IntervalLen, err = r.varint("interval length"); err != nil {
		return nil, imgHash, err
	}
	var v int64
	if v, err = r.varint("max k"); err != nil {
		return nil, imgHash, err
	}
	p.MaxK = int(v)
	if v, err = r.varint("warmup intervals"); err != nil {
		return nil, imgHash, err
	}
	p.WarmupIntervals = int(v)
	if p.CooldownInsts, err = r.varint("cooldown insts"); err != nil {
		return nil, imgHash, err
	}
	if p.FunctionalWarmInsts, err = r.varint("functional warm insts"); err != nil {
		return nil, imgHash, err
	}
	if v, err = r.varint("kmeans iters"); err != nil {
		return nil, imgHash, err
	}
	p.KMeansIters = int(v)
	if p.Seed, err = r.uvarint("seed"); err != nil {
		return nil, imgHash, err
	}
	pl.Params = p
	if pl.maxInsts, err = r.varint("max insts"); err != nil {
		return nil, imgHash, err
	}
	if err = r.cr.readFull(imgHash[:]); err != nil {
		return nil, imgHash, r.fail("reading image hash", err)
	}
	if pl.Full, err = r.bool("full flag"); err != nil {
		return nil, imgHash, err
	}

	prof := &Profile{Name: pl.Name, IntervalLen: p.IntervalLen}
	if prof.TotalInsts, err = r.varint("profile total insts"); err != nil {
		return nil, imgHash, err
	}
	if prof.TotalSetup, err = r.varint("profile total setup"); err != nil {
		return nil, imgHash, err
	}
	nIvs, err := r.count("interval count", maxPlanIntervals)
	if err != nil {
		return nil, imgHash, err
	}
	prof.Intervals = make([]Interval, 0, hint(nIvs))
	for i := 0; i < nIvs; i++ {
		iv := Interval{Index: i}
		if iv.Start, err = r.varint("interval start"); err != nil {
			return nil, imgHash, err
		}
		if iv.Insts, err = r.varint("interval insts"); err != nil {
			return nil, imgHash, err
		}
		if iv.Setup, err = r.varint("interval setup"); err != nil {
			return nil, imgHash, err
		}
		if iv.Traps, err = r.varint("interval traps"); err != nil {
			return nil, imgHash, err
		}
		nb, err := r.count("bbv entries", maxMapEntries)
		if err != nil {
			return nil, imgHash, err
		}
		iv.BBV = make(map[int]int64, hint(nb))
		for j := 0; j < nb; j++ {
			pc, err := r.varint("bbv leader pc")
			if err != nil {
				return nil, imgHash, err
			}
			n, err := r.varint("bbv count")
			if err != nil {
				return nil, imgHash, err
			}
			iv.BBV[int(pc)] = n
		}
		prof.Intervals = append(prof.Intervals, iv)
	}
	pl.Profile = prof

	warmPresent, err := r.bool("warm-columns flag")
	if err != nil {
		return nil, imgHash, err
	}
	if warmPresent {
		pl.warmRate = make([]float64, nIvs)
		for i := range pl.warmRate {
			if pl.warmRate[i], err = r.float("warm rate"); err != nil {
				return nil, imgHash, err
			}
		}
		pl.warmCum = make([]float64, nIvs+1)
		for i := range pl.warmCum {
			if pl.warmCum[i], err = r.float("warm cum"); err != nil {
				return nil, imgHash, err
			}
		}
	}

	nReps, err := r.count("rep count", maxPlanReps)
	if err != nil {
		return nil, imgHash, err
	}
	pl.Reps = make([]Rep, 0, hint(nReps))
	for i := 0; i < nReps; i++ {
		var rep Rep
		if v, err = r.varint("rep interval"); err != nil {
			return nil, imgHash, err
		}
		rep.Interval = int(v)
		if rep.Weight, err = r.float("rep weight"); err != nil {
			return nil, imgHash, err
		}
		if rep.ClusterCommitted, err = r.varint("rep cluster committed"); err != nil {
			return nil, imgHash, err
		}
		if rep.WarmStart, err = r.varint("rep warm start"); err != nil {
			return nil, imgHash, err
		}
		if rep.FuncWarmInsts, err = r.varint("rep functional warm insts"); err != nil {
			return nil, imgHash, err
		}
		if rep.WarmCommits, err = r.varint("rep warm commits"); err != nil {
			return nil, imgHash, err
		}
		if rep.MeasureCommits, err = r.varint("rep measure commits"); err != nil {
			return nil, imgHash, err
		}
		if rep.SrcBound, err = r.varint("rep src bound"); err != nil {
			return nil, imgHash, err
		}
		if rep.PilotRep, err = r.floats("rep pilot column"); err != nil {
			return nil, imgHash, err
		}
		if rep.PilotCluster, err = r.floats("rep cluster pilot column"); err != nil {
			return nil, imgHash, err
		}
		if version >= 2 {
			var ds repDeltaState
			if rep.Snap, ds.snapTombs, ds.snapFTombs, err = r.snapshotDelta("rep checkpoint"); err != nil {
				return nil, imgHash, err
			}
			if rep.WarmSnap, ds.warmTombs, ds.warmFTombs, err = r.snapshotDelta("rep warm checkpoint"); err != nil {
				return nil, imgHash, err
			}
			rep.delta = &ds
		} else {
			if rep.Snap, err = r.snapshot("rep checkpoint"); err != nil {
				return nil, imgHash, err
			}
			if rep.WarmSnap, err = r.snapshot("rep warm checkpoint"); err != nil {
				return nil, imgHash, err
			}
		}
		pl.Reps = append(pl.Reps, rep)
	}

	end, err := r.u8("end marker")
	if err != nil {
		return nil, imgHash, err
	}
	if end != planEnd {
		return nil, imgHash, r.failf("bad end marker %#x (want %#x)", end, planEnd)
	}
	if _, err := r.cr.ReadByte(); err != io.EOF {
		return nil, imgHash, r.failf("trailing garbage after end marker")
	}
	pl.imgHash = imgHash
	return pl, imgHash, nil
}

// imageHash returns the hash identifying the program this plan was built
// for: computed from the bound image when there is one, otherwise the hash
// recorded in the plan file (a decoded plan is encodable before binding).
func (pl *Plan) imageHash() [sha256.Size]byte {
	if pl.img != nil {
		return ImageHash(pl.img)
	}
	return pl.imgHash
}

// LoadPlan decodes NRPF bytes and binds the plan to the image it will
// estimate, verifying that the file was built for exactly this program,
// stream bound and sampling configuration. Version, hash or parameter
// mismatches are *FormatErrors: the caller treats them as a cache miss and
// rebuilds — a stale plan is never trusted.
func LoadPlan(data []byte, img *program.Image, maxInsts int64, p Params) (*Plan, error) {
	pl, gotHash, err := DecodePlan(data)
	if err != nil {
		return nil, err
	}
	if want := ImageHash(img); gotHash != want {
		return nil, &FormatError{Offset: int64(len(planMagic)) + 1,
			Msg: fmt.Sprintf("image hash mismatch: plan built for %x, image is %x", gotHash[:8], want[:8])}
	}
	if pl.maxInsts != maxInsts {
		return nil, &FormatError{Msg: fmt.Sprintf("stream bound mismatch: plan built for %d, want %d", pl.maxInsts, maxInsts)}
	}
	if norm := p.Normalize(); pl.Params != norm {
		return nil, &FormatError{Msg: fmt.Sprintf("params mismatch: plan built for %+v, want %+v", pl.Params, norm)}
	}
	// Materialize v2 delta checkpoints against the now-verified image: base
	// data, minus tombstones, overlaid with the delta entries — the exact
	// inverse of snapshotDelta, so a bound plan re-encodes byte-identically.
	for i := range pl.Reps {
		rep := &pl.Reps[i]
		d := rep.delta
		if d == nil {
			continue
		}
		rep.Snap.Mem = overlayMem(img.Data, rep.Snap.Mem, d.snapTombs)
		rep.Snap.FMem = overlayFMem(img.FData, rep.Snap.FMem, d.snapFTombs)
		rep.WarmSnap.Mem = overlayMem(img.Data, rep.WarmSnap.Mem, d.warmTombs)
		rep.WarmSnap.FMem = overlayFMem(img.FData, rep.WarmSnap.FMem, d.warmFTombs)
		rep.delta = nil
	}
	pl.img = img
	return pl, nil
}

// overlayMem reconstructs a full checkpoint memory map from its delta form.
func overlayMem(base, delta map[int64]int64, tombs []int64) map[int64]int64 {
	full := make(map[int64]int64, len(base)+len(delta))
	for a, v := range base {
		full[a] = v
	}
	for _, a := range tombs {
		delete(full, a)
	}
	for a, v := range delta {
		full[a] = v
	}
	return full
}

// overlayFMem is overlayMem for the floating-point memory map.
func overlayFMem(base, delta map[int64]float64, tombs []int64) map[int64]float64 {
	full := make(map[int64]float64, len(base)+len(delta))
	for a, v := range base {
		full[a] = v
	}
	for _, a := range tombs {
		delete(full, a)
	}
	for a, v := range delta {
		full[a] = v
	}
	return full
}
