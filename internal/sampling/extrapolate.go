package sampling

import (
	"math"
	"reflect"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

// measured is one representative interval's detailed-simulation result: the
// counter deltas across its measurement window and the committed
// instructions that window covered.
type measured struct {
	delta      pipeline.Stats
	committed  int64   // committed instructions inside the measurement window
	weight     int64   // committed instructions the representative stands for
	cycleScale float64 // pilot control-variate correction for the cycle count
}

// pilotScales computes each representative's cycle-correction factor for
// one target configuration. The pilots measured every interval's CPI under
// reference policies; the target's measured representative CPIs are fitted
// as a weighted least-squares blend of those pilot dimensions, so the blend
// tracks whichever reference (or mix) the target actually behaves like.
// Each representative's cycle contribution is then rescaled by the blend's
// predicted cluster-mean CPI over its predicted representative CPI —
// correcting the bias of standing a whole cluster on one member. Degenerate
// fits (too few representatives, singular system, non-positive predictions)
// fall back to the first basis column — the detailed pilot CPI — as a
// single control variate, and scales are clamped to [1/4, 4] so a bad fit
// can never dominate the measured rates.
func pilotScales(reps []Rep, ms []measured) []float64 {
	scales := make([]float64, len(ms))
	for i := range scales {
		scales[i] = 1
	}
	if len(reps) == 0 || len(reps[0].PilotRep) == 0 {
		return scales
	}
	nd := len(reps[0].PilotRep)

	// Weighted normal equations: A β = b over the measured representatives.
	A := make([][]float64, nd)
	for j := range A {
		A[j] = make([]float64, nd)
	}
	b := make([]float64, nd)
	rows := 0
	for i := range ms {
		if ms[i].committed <= 0 {
			continue
		}
		rows++
		t := float64(ms[i].delta.Cycles) / float64(ms[i].committed)
		w := float64(ms[i].weight)
		p := reps[i].PilotRep
		for j := 0; j < nd; j++ {
			for l := 0; l < nd; l++ {
				A[j][l] += w * p[j] * p[l]
			}
			b[j] += w * t * p[j]
		}
	}

	// Ridge term: with as few representatives as basis columns the normal
	// equations can be near-singular; a small diagonal load keeps the blend
	// finite without visibly biasing well-conditioned fits.
	var trace float64
	for j := 0; j < nd; j++ {
		trace += A[j][j]
	}
	for j := 0; j < nd; j++ {
		A[j][j] += 1e-3 * trace / float64(nd)
	}

	beta, ok := solvePosDef(A, b)
	if !ok || rows < nd {
		beta = nil
	}
	blend := func(p []float64) float64 {
		if beta != nil {
			var s float64
			for j, x := range p {
				s += beta[j] * x
			}
			return s
		}
		return p[0]
	}
	// A blend that predicts a non-positive CPI anywhere it is evaluated is
	// extrapolating outside its support: discard it for the mean dimension.
	if beta != nil {
		for i := range reps {
			if blend(reps[i].PilotRep) <= 0 || blend(reps[i].PilotCluster) <= 0 {
				beta = nil
				break
			}
		}
	}
	for i := range reps {
		pr, pc := blend(reps[i].PilotRep), blend(reps[i].PilotCluster)
		if pr <= 0 || pc <= 0 {
			continue
		}
		s := pc / pr
		if s < 0.25 {
			s = 0.25
		} else if s > 4 {
			s = 4
		}
		scales[i] = s
	}
	return scales
}

// solvePosDef solves the small symmetric system Aβ = b by Gaussian
// elimination with partial pivoting, reporting failure on near-singular
// systems (pilot dimensions collinear across the representatives).
func solvePosDef(A [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, A[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if abs(m[col][col]) < 1e-9 {
			return nil, false
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	beta := make([]float64, n)
	for i := range beta {
		beta[i] = m[i][n] / m[i][i]
	}
	return beta, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// peakFields are high-water marks, not flow counters: differencing them
// across a window is meaningless and extrapolating them by weight would
// inflate them. The window keeps the end value; extrapolation takes the max
// across representatives.
var peakFields = map[string]bool{"WindowPeak": true, "CITPeak": true}

// deltaStats returns end − warm field-by-field over the int64 counters,
// via reflection so new Stats counters are covered automatically. Peak
// fields keep the end value; non-counter fields (strings, bools, maps,
// slices) pass through from end untouched.
func deltaStats(end, warm pipeline.Stats) pipeline.Stats {
	d := end
	dv := reflect.ValueOf(&d).Elem()
	wv := reflect.ValueOf(warm)
	t := dv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() != reflect.Int64 || peakFields[f.Name] {
			continue
		}
		dv.Field(i).SetInt(dv.Field(i).Int() - wv.Field(i).Int())
	}
	return d
}

// extrapolate scales each representative's measured deltas from its
// measurement window up to the committed-instruction mass of the cluster it
// represents, and sums across clusters: X_est = Σ_r weight_r · X_r/committed_r.
// Peak fields take the max across representatives instead. The Cycles field
// additionally carries each representative's pilot control-variate
// correction (Rep.PilotScale): the pilots measured every interval, so a
// representative known to run fast or slow relative to its cluster's mean
// has its cycle contribution rescaled accordingly.
func extrapolate(ms []measured) pipeline.Stats {
	var est pipeline.Stats
	ev := reflect.ValueOf(&est).Elem()
	t := ev.Type()
	acc := make([]float64, t.NumField())
	for _, m := range ms {
		den := float64(m.committed)
		if den <= 0 {
			den = 1
		}
		scale := float64(m.weight) / den
		mv := reflect.ValueOf(m.delta)
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.Type.Kind() != reflect.Int64 {
				continue
			}
			if peakFields[f.Name] {
				if v := mv.Field(i).Int(); v > ev.Field(i).Int() {
					ev.Field(i).SetInt(v)
				}
				continue
			}
			x := float64(mv.Field(i).Int()) * scale
			if f.Name == "Cycles" && m.cycleScale > 0 {
				x *= m.cycleScale
			}
			acc[i] += x
		}
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() != reflect.Int64 || peakFields[f.Name] {
			continue
		}
		ev.Field(i).SetInt(int64(math.Round(acc[i])))
	}
	return est
}
