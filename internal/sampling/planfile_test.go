package sampling

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

// allPolicies are the six commit policies of the paper's figures.
var allPolicies = []pipeline.PolicyKind{
	pipeline.InOrder, pipeline.NonSpecOoO, pipeline.Noreba,
	pipeline.IdealReconv, pipeline.SpecBR, pipeline.Spec,
}

// policyCfg mirrors the experiment runner's normalization: policies that do
// not consume compiler annotations run with free setup slots.
func policyCfg(pol pipeline.PolicyKind) pipeline.Config {
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = pol
	if pol != pipeline.Noreba && pol != pipeline.IdealReconv {
		cfg.FreeSetup = true
	}
	return cfg
}

// statsJSON canonicalises a Stats for byte comparison.
func statsJSON(t testing.TB, st *pipeline.Stats) []byte {
	t.Helper()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestEstimateConcurrentDeterminism: fanning the representative windows over
// a worker group must be invisible in the result — for every policy and
// workload, the concurrent estimate marshals to byte-identical JSON as the
// serial one. Run under -race this also proves the windows share nothing
// mutable (each clones the plan's warmed state and restores its own
// emulator).
func TestEstimateConcurrentDeterminism(t *testing.T) {
	workers := runtime.GOMAXPROCS(0) + 2 // oversubscribe: order scrambling costs nothing
	for _, wl := range []struct {
		name     string
		scaleDiv int
	}{
		{"CRC32", 2},
		{"dijkstra", 4},
		{"bzip2", 2},
	} {
		res := compileWorkload(t, wl.name, wl.scaleDiv)
		pl, err := BuildPlan(res.Image, res.Meta, 1<<20, Default())
		if err != nil {
			t.Fatal(err)
		}
		if pl.Full {
			t.Fatalf("%s degenerated to Full at scaleDiv %d — pick a bigger scale", wl.name, wl.scaleDiv)
		}
		for _, pol := range allPolicies {
			cfg := policyCfg(pol)
			serial, err := pl.EstimateContextN(context.Background(), cfg, res.Meta, 1)
			if err != nil {
				t.Fatal(err)
			}
			conc, err := pl.EstimateContextN(context.Background(), cfg, res.Meta, workers)
			if err != nil {
				t.Fatal(err)
			}
			if sj, cj := statsJSON(t, serial), statsJSON(t, conc); !bytes.Equal(sj, cj) {
				t.Errorf("%s under %v: concurrent estimate differs from serial:\nserial:     %s\nconcurrent: %s",
					wl.name, pol, sj, cj)
			}
		}
	}
}

// TestEstimateErrorProvenance: window errors must name the workload,
// representative interval and policy on their own, so callers never re-wrap.
func TestEstimateErrorProvenance(t *testing.T) {
	res := compileWorkload(t, "CRC32", 2)
	pl, err := BuildPlan(res.Image, res.Meta, 1<<20, Default())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = pl.EstimateContext(ctx, policyCfg(pipeline.Noreba), res.Meta)
	if err == nil {
		t.Fatal("cancelled estimate succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"sampling:", pl.Name, "interval", pipeline.Noreba.String()} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not name %q", msg, want)
		}
	}
}

// TestPlanFileRoundTrip: encode→load is the identity. The loaded plan must
// re-encode to the same bytes and estimate bit-identically to the original —
// a stored plan is the plan, not an approximation of it.
func TestPlanFileRoundTrip(t *testing.T) {
	res := compileWorkload(t, "dijkstra", 4)
	p := Default()
	pl, err := BuildPlan(res.Image, res.Meta, 1<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	data := EncodePlan(pl)
	if again := EncodePlan(pl); !bytes.Equal(data, again) {
		t.Fatal("EncodePlan is not deterministic")
	}

	loaded, err := LoadPlan(data, res.Image, 1<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	if re := EncodePlan(loaded); !bytes.Equal(data, re) {
		t.Fatalf("loaded plan re-encodes to %d bytes != original %d bytes", len(re), len(data))
	}
	if loaded.Full != pl.Full || len(loaded.Reps) != len(pl.Reps) {
		t.Fatalf("loaded plan shape %v/%d != built %v/%d", loaded.Full, len(loaded.Reps), pl.Full, len(pl.Reps))
	}

	for _, pol := range []pipeline.PolicyKind{pipeline.InOrder, pipeline.Noreba} {
		cfg := policyCfg(pol)
		want, err := pl.Estimate(cfg, res.Meta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Estimate(cfg, res.Meta)
		if err != nil {
			t.Fatal(err)
		}
		if wj, gj := statsJSON(t, want), statsJSON(t, got); !bytes.Equal(wj, gj) {
			t.Errorf("%v: loaded-plan estimate differs from built-plan estimate:\nbuilt:  %s\nloaded: %s", pol, wj, gj)
		}
	}

	key := PlanKey(res.Image, 1<<20, p)
	if len(key) != 64 {
		t.Fatalf("PlanKey %q is not sha256 hex", key)
	}
	if key != PlanKey(res.Image, 1<<20, p) {
		t.Fatal("PlanKey is not deterministic")
	}
}

// TestPlanFileV1BackwardCompat: the reader must load genuine v1 bytes (full
// snapshot maps) to exactly the plan the v2 delta bytes load to, and the
// content-store key must not move across the format bump — plans persisted
// before the delta encoding stay warm and stay correct.
func TestPlanFileV1BackwardCompat(t *testing.T) {
	res := compileWorkload(t, "dijkstra", 4)
	p := Default()
	pl, err := BuildPlan(res.Image, res.Meta, 1<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	v1 := encodePlanAt(pl, 1)
	v2 := EncodePlan(pl)
	if bytes.Equal(v1, v2) {
		t.Fatal("v1 and v2 encodings are identical — the delta form is not being exercised")
	}
	if len(v2) >= len(v1) {
		t.Errorf("v2 delta encoding (%d bytes) is not smaller than v1 (%d bytes)", len(v2), len(v1))
	}

	fromV1, err := LoadPlan(v1, res.Image, 1<<20, p)
	if err != nil {
		t.Fatalf("loading v1 bytes: %v", err)
	}
	fromV2, err := LoadPlan(v2, res.Image, 1<<20, p)
	if err != nil {
		t.Fatalf("loading v2 bytes: %v", err)
	}
	// Both loads are bound plans with materialized snapshots; re-encoding
	// canonicalises them, so byte equality here means the v1 full maps and
	// the v2 delta reconstruction agree entry for entry.
	if !bytes.Equal(EncodePlan(fromV1), EncodePlan(fromV2)) {
		t.Fatal("plan loaded from v1 bytes differs from plan loaded from v2 bytes")
	}

	// The PlanKey tag is frozen: a format bump must not cold-start stores.
	key := PlanKey(res.Image, 1<<20, p)
	if got := planKeyTag; got != "noreba-plan-v1" {
		t.Fatalf("planKeyTag drifted to %q — this cold-starts every plan store", got)
	}
	if len(key) != 64 {
		t.Fatalf("PlanKey %q is not sha256 hex", key)
	}
}

// TestPlanFileStaleness: every way a stored plan can go stale — bumped
// format version, recompiled program, different stream bound or parameters,
// flipped bytes, truncation — must surface as a *FormatError (a miss to the
// caller), never as a silently-wrong plan or a panic.
func TestPlanFileStaleness(t *testing.T) {
	res := compileWorkload(t, "dijkstra", 4)
	other := compileWorkload(t, "CRC32", 2)
	p := Default()
	pl, err := BuildPlan(res.Image, res.Meta, 1<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	data := EncodePlan(pl)

	wantFormatError := func(t *testing.T, err error, what string) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: load succeeded, want *FormatError", what)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error %v (%T) is not a *FormatError", what, err, err)
		}
		if fe.Offset < 0 || fe.Offset > int64(len(data))+1 {
			t.Errorf("%s: offset %d outside [0, %d]", what, fe.Offset, len(data)+1)
		}
	}

	// A future (or past) format version is rebuilt, not misparsed.
	stale := append([]byte(nil), data...)
	stale[len(planMagic)] = PlanFileVersion + 1
	_, err = LoadPlan(stale, res.Image, 1<<20, p)
	wantFormatError(t, err, "version bump")
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch error does not say so: %v", err)
	}

	// A recompiled (different) program must never be served this plan.
	_, err = LoadPlan(data, other.Image, 1<<20, p)
	wantFormatError(t, err, "image mismatch")

	// Same image, different stream bound or sampling parameters.
	_, err = LoadPlan(data, res.Image, 1<<19, p)
	wantFormatError(t, err, "maxInsts mismatch")
	p2 := p
	p2.IntervalLen = p.IntervalLen * 2
	_, err = LoadPlan(data, res.Image, 1<<20, p2)
	wantFormatError(t, err, "params mismatch")

	// Trailing garbage: a concatenated or padded file is corrupt.
	_, err = LoadPlan(append(append([]byte(nil), data...), 0xAA), res.Image, 1<<20, p)
	wantFormatError(t, err, "trailing garbage")

	// Truncation at every eighth byte: always an in-bounds *FormatError.
	for n := 0; n < len(data); n += 8 {
		if _, err := LoadPlan(data[:n], res.Image, 1<<20, p); err == nil {
			t.Fatalf("truncation to %d bytes loaded successfully", n)
		} else {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("truncation to %d: %v is not a *FormatError", n, err)
			}
		}
	}
}

// FuzzPlanFile: hostile bytes must produce an in-bounds *FormatError or a
// plan whose re-encoding round-trips — never a panic, never an unbounded
// allocation.
func FuzzPlanFile(f *testing.F) {
	res := compileWorkload(f, "CRC32", 4)
	pl, err := BuildPlan(res.Image, res.Meta, 1<<18, Default())
	if err != nil {
		f.Fatal(err)
	}
	valid := EncodePlan(pl)
	legacy := encodePlanAt(pl, 1) // v1 full-map form: the reader accepts both
	f.Add(valid)
	f.Add(legacy)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add(legacy[:len(legacy)*2/3])
	f.Add([]byte(planMagic))
	f.Add([]byte{})
	for _, i := range []int{0, len(planMagic), len(planMagic) + 1, len(valid) / 3, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		f.Add(mut)
	}
	// Hit the v2 delta sections specifically: the changed-entry and
	// tombstone counts live in the back half of the file, after the pilot
	// columns of the first representative.
	for _, i := range []int{len(valid) * 3 / 4, len(valid) - len(valid)/8, len(legacy) / 2} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x55
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pl, _, err := DecodePlan(data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %v (%T) is not a *FormatError", err, err)
			}
			if fe.Offset < 0 || fe.Offset > int64(len(data))+1 {
				t.Fatalf("error offset %d outside [0, %d]: %v", fe.Offset, len(data)+1, err)
			}
			return
		}
		// Decoded cleanly: the plan must survive an encode→decode round trip.
		re := EncodePlan(pl)
		if _, _, err := DecodePlan(re); err != nil {
			t.Fatalf("re-encoded plan fails to decode: %v", err)
		}
	})
}
