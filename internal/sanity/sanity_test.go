package sanity

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorRendering(t *testing.T) {
	err := At("commit/in-order", 42, 7, 99, "index %d ahead of frontier %d", 5, 3)
	msg := err.Error()
	for _, want := range []string{"commit/in-order", "cycle 42", "pc=7", "seq=99", "index 5 ahead of frontier 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error text %q missing %q", msg, want)
		}
	}
}

func TestErrorfOmitsLocation(t *testing.T) {
	err := Errorf("prf/conservation", 10, "leak")
	if err.PC != -1 || err.Seq != -1 {
		t.Fatalf("Errorf should mark PC/Seq unknown, got pc=%d seq=%d", err.PC, err.Seq)
	}
	if strings.Contains(err.Error(), "pc=") {
		t.Errorf("error text %q renders an unknown pc", err.Error())
	}
}

func TestAsUnwraps(t *testing.T) {
	base := Errorf("rob/occupancy", 3, "drift")
	wrapped := fmt.Errorf("run failed: %w", base)
	got, ok := As(wrapped)
	if !ok || got != base {
		t.Fatalf("As failed to recover the typed error through wrapping")
	}
	if _, ok := As(errors.New("plain")); ok {
		t.Fatal("As matched a non-sanity error")
	}
	if _, ok := As(nil); ok {
		t.Fatal("As matched nil")
	}
}
