// Package sanity defines the typed invariant-violation error the pipeline
// sanitizer reports. The simulator's whole claim rests on commit-order
// legality: out-of-order commit is only safe when the paper's BIT/DCT/CQT
// rules (§4) hold. The sanitizer re-derives those rules independently of the
// commit policies and fails fast with a cycle-stamped diagnostic the moment a
// policy retires an instruction it was not entitled to — a policy bug then
// surfaces as a hard error instead of silently inflating Figure 6 speedups.
//
// The package holds only the error type and its helpers so that both the
// checker (internal/pipeline) and consumers (experiments, cmds, tests) can
// name violations without importing the pipeline's internals.
package sanity

import (
	"errors"
	"fmt"
)

// Error is one invariant violation: which rule broke, where in simulated
// time, and at which instruction. It is the only error type the pipeline
// sanitizer produces, so callers can switch on it with errors.As.
type Error struct {
	// Invariant names the violated rule, e.g. "commit/in-order" or
	// "prf/conservation". Names are stable slash-separated identifiers:
	// the first segment is the subsystem, the second the rule.
	Invariant string
	// Cycle is the simulated cycle at which the violation was detected.
	Cycle int64
	// PC is the static instruction address involved, or -1 when the
	// violation is not attributable to a single instruction.
	PC int
	// Seq is the dynamic sequence number involved, or -1.
	Seq int64
	// Detail is a human-readable explanation with the observed values.
	Detail string
}

func (e *Error) Error() string {
	loc := ""
	if e.PC >= 0 {
		loc = fmt.Sprintf(" pc=%d", e.PC)
	}
	if e.Seq >= 0 {
		loc += fmt.Sprintf(" seq=%d", e.Seq)
	}
	return fmt.Sprintf("sanity: %s violated at cycle %d%s: %s", e.Invariant, e.Cycle, loc, e.Detail)
}

// Errorf builds a violation for an unattributable (whole-structure) check.
func Errorf(invariant string, cycle int64, format string, args ...any) *Error {
	return &Error{Invariant: invariant, Cycle: cycle, PC: -1, Seq: -1, Detail: fmt.Sprintf(format, args...)}
}

// At builds a violation attributed to one dynamic instruction.
func At(invariant string, cycle int64, pc int, seq int64, format string, args ...any) *Error {
	return &Error{Invariant: invariant, Cycle: cycle, PC: pc, Seq: seq, Detail: fmt.Sprintf(format, args...)}
}

// As unwraps err to a *Error if one is in its chain.
func As(err error) (*Error, bool) {
	var se *Error
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}
